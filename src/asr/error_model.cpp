#include "asr/error_model.h"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace sarbp::asr {

BlockErrorStats measure_block_error(const geometry::Vec3& centre,
                                    const geometry::Vec3& radar, double dx,
                                    double dy, Index width, Index height) {
  const Quadratic2D q = range_quadratic(centre, radar, dx, dy);
  const double l0 = -0.5 * static_cast<double>(width - 1);
  const double m0 = -0.5 * static_cast<double>(height - 1);
  BlockErrorStats stats;
  double sum_sq = 0.0;
  for (Index m = 0; m < height; ++m) {
    for (Index l = 0; l < width; ++l) {
      const double lc = static_cast<double>(l) + l0;
      const double mc = static_cast<double>(m) + m0;
      const double err =
          q.eval(lc, mc) - exact_range(centre, radar, dx, dy, lc, mc);
      stats.max_abs_m = std::max(stats.max_abs_m, std::abs(err));
      sum_sq += err * err;
    }
  }
  stats.rms_m = std::sqrt(sum_sq / static_cast<double>(width * height));
  return stats;
}

double phase_error_snr_db(double sigma_range_m, double wavenumber) {
  const double sigma_phase =
      2.0 * std::numbers::pi * wavenumber * sigma_range_m;
  if (sigma_phase <= 0.0) return std::numeric_limits<double>::infinity();
  return -20.0 * std::log10(sigma_phase);
}

double predicted_snr_db(const geometry::ImageGrid& grid,
                        const geometry::Vec3& radar, double wavenumber,
                        Index block_w, Index block_h) {
  // The remainder is largest where the look direction is most oblique to
  // the block — scan the grid corners and centre for the worst bound.
  double worst = 0.0;
  const Index xs[] = {0, grid.width() - 1, 0, grid.width() - 1, grid.width() / 2};
  const Index ys[] = {0, 0, grid.height() - 1, grid.height() - 1, grid.height() / 2};
  for (int c = 0; c < 5; ++c) {
    const geometry::Vec3 centre = grid.position(xs[c], ys[c]);
    worst = std::max(
        worst, taylor_remainder_bound(centre, radar, grid.spacing(),
                                      grid.spacing(),
                                      0.5 * static_cast<double>(block_w),
                                      0.5 * static_cast<double>(block_h)));
  }
  return phase_error_snr_db(worst, wavenumber);
}

}  // namespace sarbp::asr
