// Second-order Taylor model of the slant-range function — the first step
// of approximate strength reduction (paper §3.2–3.3).
//
// For a pixel block whose pixel (l, m) sits at scene position
//   p(l, m) = base + (l*dx, m*dy, 0),
// the slant range to the radar at p0 is
//   r(l, m) = sqrt((ux + l*dx)^2 + (uy + m*dy)^2 + uz^2),  u = base - p0,
// which is the paper's f(x, y) = sqrt(x^2 + y^2 + alpha^2) with
// x = ux + l*dx, y = uy + m*dy, alpha = |uz|. The quadratic expansion about
// the block centre (paper footnote 4) is
//   r(l, m) ~= f0 + ax*l + ay*m + bx*l^2 + by*m^2 + cxy*l*m
// in *centred* indices l, m in [-L/2, L/2).
#pragma once

#include "common/types.h"
#include "geometry/vec3.h"

namespace sarbp::asr {

/// Coefficients of q(l, m) = f0 + ax l + ay m + bx l^2 + by m^2 + cxy l m.
struct Quadratic2D {
  double f0 = 0.0;
  double ax = 0.0;
  double ay = 0.0;
  double bx = 0.0;
  double by = 0.0;
  double cxy = 0.0;

  [[nodiscard]] double eval(double l, double m) const {
    return f0 + ax * l + ay * m + bx * l * l + by * m * m + cxy * l * m;
  }
};

/// Taylor coefficients of the range function about the point where
/// (l, m) = (0, 0), i.e. about `centre = base` in scene coordinates:
///   u = centre - radar;  f0 = |u|;
///   ax = dx*ux/f0, ay = dy*uy/f0,
///   bx = dx^2/(2 f0) - dx^2 ux^2/(2 f0^3),   (paper §3.3)
///   by = dy^2/(2 f0) - dy^2 uy^2/(2 f0^3),
///   cxy = -dx*dy*ux*uy/f0^3.
Quadratic2D range_quadratic(const geometry::Vec3& centre,
                            const geometry::Vec3& radar, double dx, double dy);

/// Exact range at centred offsets, for error measurements.
double exact_range(const geometry::Vec3& centre, const geometry::Vec3& radar,
                   double dx, double dy, double l, double m);

/// Upper estimate of the third-order Taylor remainder over a block with
/// centred offsets |l| <= half_l, |m| <= half_m: the worst |r - q| in
/// metres. Evaluates the four distinct third partials of
/// sqrt(x^2+y^2+alpha^2) at the block centre and corners and applies the
/// Lagrange-form bound.
double taylor_remainder_bound(const geometry::Vec3& centre,
                              const geometry::Vec3& radar, double dx,
                              double dy, double half_l, double half_m);

}  // namespace sarbp::asr
