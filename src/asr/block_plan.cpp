#include "asr/block_plan.h"

#include <algorithm>

namespace sarbp::asr {

std::vector<BlockSpec> plan_blocks(Index x0, Index y0, Index width,
                                   Index height, Index block_w,
                                   Index block_h) {
  ensure(width >= 0 && height >= 0, "plan_blocks: negative region");
  ensure(block_w > 0 && block_h > 0, "plan_blocks: block size must be positive");
  std::vector<BlockSpec> blocks;
  blocks.reserve(static_cast<std::size_t>(((width + block_w - 1) / block_w) *
                                          ((height + block_h - 1) / block_h)));
  for (Index by = y0; by < y0 + height; by += block_h) {
    for (Index bx = x0; bx < x0 + width; bx += block_w) {
      BlockSpec spec;
      spec.x0 = bx;
      spec.y0 = by;
      spec.width = std::min(block_w, x0 + width - bx);
      spec.height = std::min(block_h, y0 + height - by);
      blocks.push_back(spec);
    }
  }
  return blocks;
}

}  // namespace sarbp::asr
