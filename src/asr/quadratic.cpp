#include "asr/quadratic.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace sarbp::asr {
namespace {

/// |f_xxx|, |f_xxy|, |f_xyy|, |f_yyy| of f = sqrt(x^2 + y^2 + a^2).
struct ThirdPartials {
  double xxx;
  double xxy;
  double xyy;
  double yyy;
};

ThirdPartials third_partials(double x, double y, double a2) {
  const double f2 = x * x + y * y + a2;
  const double f = std::sqrt(f2);
  const double f5 = f2 * f2 * f;
  ThirdPartials p;
  p.xxx = std::abs(-3.0 * x * (y * y + a2) / f5);
  p.yyy = std::abs(-3.0 * y * (x * x + a2) / f5);
  p.xxy = std::abs(y * (2.0 * x * x - y * y - a2) / f5);
  p.xyy = std::abs(x * (2.0 * y * y - x * x - a2) / f5);
  return p;
}

}  // namespace

Quadratic2D range_quadratic(const geometry::Vec3& centre,
                            const geometry::Vec3& radar, double dx,
                            double dy) {
  const geometry::Vec3 u = centre - radar;
  const double f0 = u.norm();
  ensure(f0 > 0.0, "range_quadratic: radar coincides with block centre");
  const double f03 = f0 * f0 * f0;
  Quadratic2D q;
  q.f0 = f0;
  q.ax = dx * u.x / f0;
  q.ay = dy * u.y / f0;
  q.bx = dx * dx / (2.0 * f0) - dx * dx * u.x * u.x / (2.0 * f03);
  q.by = dy * dy / (2.0 * f0) - dy * dy * u.y * u.y / (2.0 * f03);
  q.cxy = -dx * dy * u.x * u.y / f03;
  return q;
}

double exact_range(const geometry::Vec3& centre, const geometry::Vec3& radar,
                   double dx, double dy, double l, double m) {
  const geometry::Vec3 p = centre + geometry::Vec3{l * dx, m * dy, 0.0};
  return geometry::distance(p, radar);
}

double taylor_remainder_bound(const geometry::Vec3& centre,
                              const geometry::Vec3& radar, double dx,
                              double dy, double half_l, double half_m) {
  const geometry::Vec3 u = centre - radar;
  const double a2 = u.z * u.z;
  const double hx = half_l * std::abs(dx);
  const double hy = half_m * std::abs(dy);
  // Third partials evaluated at the centre and the four block corners;
  // over a block far smaller than the standoff they vary by O(h/r), so the
  // corner/centre max with a modest safety factor dominates the true
  // supremum. Tests verify bound >= measured across geometries.
  ThirdPartials worst{0, 0, 0, 0};
  const double xs[] = {u.x, u.x - hx, u.x + hx, u.x - hx, u.x + hx};
  const double ys[] = {u.y, u.y - hy, u.y + hy, u.y + hy, u.y - hy};
  for (int i = 0; i < 5; ++i) {
    const ThirdPartials p = third_partials(xs[i], ys[i], a2);
    worst.xxx = std::max(worst.xxx, p.xxx);
    worst.xxy = std::max(worst.xxy, p.xxy);
    worst.xyy = std::max(worst.xyy, p.xyy);
    worst.yyy = std::max(worst.yyy, p.yyy);
  }
  constexpr double kSafety = 1.25;
  return kSafety / 6.0 *
         (worst.xxx * hx * hx * hx + 3.0 * worst.xxy * hx * hx * hy +
          3.0 * worst.xyy * hx * hy * hy + worst.yyy * hy * hy * hy);
}

}  // namespace sarbp::asr
