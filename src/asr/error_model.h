// Accuracy model for ASR: predicts (and measures) the image SNR as a
// function of block size — the machinery behind Fig. 8's
// accuracy-performance trade-off.
#pragma once

#include "asr/quadratic.h"
#include "common/types.h"
#include "geometry/grid.h"
#include "geometry/vec3.h"

namespace sarbp::asr {

struct BlockErrorStats {
  double max_abs_m = 0.0;  ///< worst |q - r| over the block, metres
  double rms_m = 0.0;      ///< RMS |q - r| over the block, metres
};

/// Measures the quadratic-vs-exact range error over a width x height block
/// centred at `centre` (dense evaluation).
BlockErrorStats measure_block_error(const geometry::Vec3& centre,
                                    const geometry::Vec3& radar, double dx,
                                    double dy, Index width, Index height);

/// Predicted SNR (dB) when the dominant error is the carrier phase error
/// from a range error of RMS sigma_r: the residual signal power fraction is
/// ~(2*pi*k*sigma_r)^2 for small phase errors, so
///   SNR ~= -20 log10(2*pi*k*sigma_r).
double phase_error_snr_db(double sigma_range_m, double wavenumber);

/// End-to-end prediction for an imaging geometry: bounds the Taylor
/// remainder for the *worst* block of the grid (nearest the radar's ground
/// track, where curvature is largest) and converts to SNR. Conservative:
/// measured SNR should exceed this.
double predicted_snr_db(const geometry::ImageGrid& grid,
                        const geometry::Vec3& radar, double wavenumber,
                        Index block_w, Index block_h);

}  // namespace sarbp::asr
