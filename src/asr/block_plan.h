// Block decomposition of an image region for per-block ASR application
// (paper §3.5: "we control the accuracy of ASR by blocking the loop and
// applying ASR to each block").
#pragma once

#include <vector>

#include "common/check.h"
#include "common/types.h"

namespace sarbp::asr {

/// One rectangular pixel block: [x0, x0+width) x [y0, y0+height).
struct BlockSpec {
  Index x0 = 0;
  Index y0 = 0;
  Index width = 0;
  Index height = 0;

  friend bool operator==(const BlockSpec&, const BlockSpec&) = default;
};

/// Tiles the region [x0, x0+width) x [y0, y0+height) with blocks of at most
/// block_w x block_h pixels (edge blocks may be smaller). Row-major order.
std::vector<BlockSpec> plan_blocks(Index x0, Index y0, Index width,
                                   Index height, Index block_w, Index block_h);

/// Default ASR block edge: the paper selects 64 x 64 as the size whose
/// accuracy matches the mixed-precision baseline (Fig. 8).
inline constexpr Index kDefaultBlock = 64;

}  // namespace sarbp::asr
