// 2D complex FFT over Grid2D, built on the planned 1D transform.
// Used by the registration stage's patch cross-correlations.
#pragma once

#include "common/grid2d.h"
#include "signal/fft.h"

namespace sarbp::signal {

/// Planned 2D FFT for a fixed width x height shape.
template <class T>
class Fft2D {
 public:
  Fft2D(Index width, Index height)
      : width_(width),
        height_(height),
        row_fft_(static_cast<std::size_t>(width)),
        col_fft_(static_cast<std::size_t>(height)) {}

  [[nodiscard]] Index width() const { return width_; }
  [[nodiscard]] Index height() const { return height_; }

  void forward(Grid2D<std::complex<T>>& grid) const {
    transform(grid, FftDirection::kForward);
  }
  void inverse(Grid2D<std::complex<T>>& grid) const {
    transform(grid, FftDirection::kInverse);
  }

  void transform(Grid2D<std::complex<T>>& grid, FftDirection dir) const;

 private:
  Index width_;
  Index height_;
  Fft<T> row_fft_;
  Fft<T> col_fft_;
};

extern template class Fft2D<float>;
extern template class Fft2D<double>;

}  // namespace sarbp::signal
