#include "signal/window.h"

#include <cmath>
#include <numbers>

#include "common/check.h"

namespace sarbp::signal {
namespace {

constexpr double kPi = std::numbers::pi;

std::vector<double> cosine_sum(std::size_t n, double a0, double a1, double a2) {
  std::vector<double> w(n, 1.0);
  if (n == 1) return w;
  for (std::size_t i = 0; i < n; ++i) {
    const double t = 2.0 * kPi * static_cast<double>(i) / static_cast<double>(n - 1);
    w[i] = a0 - a1 * std::cos(t) + a2 * std::cos(2.0 * t);
  }
  return w;
}

}  // namespace

std::vector<double> taylor_window(std::size_t n, int nbar, double sidelobe_db) {
  sarbp::ensure(n > 0, "taylor_window: n must be positive");
  sarbp::ensure(nbar >= 1, "taylor_window: nbar must be >= 1");
  sarbp::ensure(sidelobe_db < 0, "taylor_window: sidelobe level must be negative dB");
  // Standard Taylor weighting (e.g. Richards, "Fundamentals of Radar
  // Signal Processing"): F_m coefficients from the desired sidelobe ratio.
  const double r = std::pow(10.0, -sidelobe_db / 20.0);  // voltage ratio > 1
  const double a = std::acosh(r) / kPi;
  const double a2 = a * a;
  const double nb = static_cast<double>(nbar);
  const double sigma2 = nb * nb / (a2 + (nb - 0.5) * (nb - 0.5));

  std::vector<double> fm(static_cast<std::size_t>(nbar - 1));
  for (int m = 1; m < nbar; ++m) {
    double numerator = 1.0;
    double denominator = 1.0;
    const double md = static_cast<double>(m);
    for (int k = 1; k < nbar; ++k) {
      const double kd = static_cast<double>(k);
      numerator *= 1.0 - md * md / (sigma2 * (a2 + (kd - 0.5) * (kd - 0.5)));
      if (k != m) denominator *= 1.0 - md * md / (kd * kd);
    }
    const double sign = (m % 2 == 0) ? 1.0 : -1.0;
    fm[static_cast<std::size_t>(m - 1)] = -sign * numerator / (2.0 * denominator);
  }

  std::vector<double> w(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double x =
        (static_cast<double>(i) - 0.5 * static_cast<double>(n - 1)) /
        static_cast<double>(n);
    double v = 1.0;
    for (int m = 1; m < nbar; ++m) {
      v += 2.0 * fm[static_cast<std::size_t>(m - 1)] *
           std::cos(2.0 * kPi * static_cast<double>(m) * x);
    }
    w[i] = v;
  }
  return w;
}

std::vector<double> make_window(WindowKind kind, std::size_t n) {
  sarbp::ensure(n > 0, "make_window: n must be positive");
  switch (kind) {
    case WindowKind::kRect:
      return std::vector<double>(n, 1.0);
    case WindowKind::kHann:
      return cosine_sum(n, 0.5, 0.5, 0.0);
    case WindowKind::kHamming:
      return cosine_sum(n, 0.54, 0.46, 0.0);
    case WindowKind::kBlackman:
      return cosine_sum(n, 0.42, 0.5, 0.08);
    case WindowKind::kTaylor:
      return taylor_window(n, 4, -35.0);
  }
  return std::vector<double>(n, 1.0);
}

}  // namespace sarbp::signal
