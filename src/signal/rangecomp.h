// FFT matched-filter range compression.
//
// Raw baseband echoes (one receive window per pulse) are correlated with
// the transmitted chirp replica; the output is a range profile whose bin b
// corresponds to slant range r0 + b*dr — exactly the `In` array the
// backprojection inner loop samples.
#pragma once

#include <span>
#include <vector>

#include "common/types.h"
#include "signal/chirp.h"
#include "signal/fft.h"
#include "signal/window.h"

namespace sarbp::signal {

/// Planned range compressor for a fixed receive-window length.
class RangeCompressor {
 public:
  /// `window_samples`: number of raw samples per receive window.
  /// `taper`: spectral weighting applied to the reference to suppress range
  /// sidelobes (rect == classic matched filter).
  RangeCompressor(const ChirpParams& chirp, std::size_t window_samples,
                  WindowKind taper = WindowKind::kTaylor);

  /// Correlates `raw` (size window_samples) with the chirp replica and
  /// writes the compressed profile (same length; bin b = delay b/fs from
  /// window start). Output is single precision: the paper's In array.
  void compress(std::span<const CDouble> raw, std::span<CFloat> out) const;

  [[nodiscard]] std::size_t window_samples() const { return window_samples_; }
  [[nodiscard]] std::size_t fft_size() const { return fft_.size(); }

 private:
  std::size_t window_samples_;
  Fft<double> fft_;
  std::vector<CDouble> reference_spectrum_;  // conj(FFT(replica)) * taper
};

}  // namespace sarbp::signal
