// Complex FFT: iterative radix-2 for power-of-two sizes, Bluestein's
// chirp-z algorithm for everything else.
//
// This is the substrate for range compression (matched filter), the
// registration stage's patch cross-correlations (the paper's Nc Sc×Sc 2D
// FFTs), and the Table 5 FLOP model's 10 n^2 log n 2D-FFT accounting.
#pragma once

#include <complex>
#include <span>
#include <vector>

#include "common/check.h"
#include "common/types.h"

namespace sarbp::signal {

enum class FftDirection { kForward, kInverse };

/// Planned 1D complex FFT of a fixed size. Plans precompute twiddle
/// factors and the bit-reversal permutation (and, for non-power-of-two
/// sizes, the Bluestein chirp sequences), so repeated transforms — the
/// common case in range compression and registration — do no setup work.
///
/// The inverse transform is normalized by 1/N, so inverse(forward(x)) == x.
template <class T>
class Fft {
 public:
  explicit Fft(std::size_t n);

  [[nodiscard]] std::size_t size() const { return n_; }

  /// In-place transform; data.size() must equal size().
  void forward(std::span<std::complex<T>> data) const;
  void inverse(std::span<std::complex<T>> data) const;

  void transform(std::span<std::complex<T>> data, FftDirection dir) const {
    dir == FftDirection::kForward ? forward(data) : inverse(data);
  }

  [[nodiscard]] static bool is_power_of_two(std::size_t n) {
    return n != 0 && (n & (n - 1)) == 0;
  }

  /// Smallest power of two >= n.
  [[nodiscard]] static std::size_t next_power_of_two(std::size_t n);

 private:
  void pow2_transform(std::span<std::complex<T>> data, bool inverse) const;
  void bluestein_transform(std::span<std::complex<T>> data, bool inverse) const;

  std::size_t n_;
  bool pow2_;
  // pow2 machinery (for n_ itself, or for the Bluestein convolution size m_).
  std::size_t m_;                               // convolution length (pow2)
  std::vector<std::size_t> bitrev_;             // size m_ (or n_ if pow2)
  std::vector<std::complex<T>> twiddle_;        // forward twiddles, size m_/2
  // Bluestein chirps: b_k = exp(i*pi*k^2/n), and the pre-transformed filter.
  std::vector<std::complex<T>> chirp_;          // size n_
  std::vector<std::complex<T>> chirp_filter_fwd_;  // size m_, forward-FFT'd
};

/// One-shot convenience transform (plans internally).
template <class T>
void fft(std::span<std::complex<T>> data, FftDirection dir) {
  Fft<T>(data.size()).transform(data, dir);
}

extern template class Fft<float>;
extern template class Fft<double>;

}  // namespace sarbp::signal
