#include "signal/trig.h"

#include <cmath>
#include <numbers>

namespace sarbp::signal {
namespace {

constexpr double kTwoPi = 2.0 * std::numbers::pi;
constexpr float kPiOver2F = 1.57079632679489662f;

// Polynomial cores on [-pi/4, pi/4]. Coefficients are the Taylor series
// truncations, which over this narrow interval are within ~1 ulp of the
// minimax optimum for float evaluation.
float sin_core(float x) {
  const float x2 = x * x;
  // x - x^3/3! + x^5/5! - x^7/7!
  return x * (1.0f + x2 * (-1.6666667163e-1f +
                           x2 * (8.3333337680e-3f + x2 * -1.9841270114e-4f)));
}

float cos_core(float x) {
  const float x2 = x * x;
  // 1 - x^2/2! + x^4/4! - x^6/6! + x^8/8!
  return 1.0f + x2 * (-5.0e-1f +
                      x2 * (4.1666667908e-2f +
                            x2 * (-1.3888889225e-3f + x2 * 2.4801587642e-5f)));
}

}  // namespace

double reduce_to_pi(double x) {
  // Cody–Waite style reduction is unnecessary here because |x| stays below
  // ~2^23 * 2*pi in any realistic SAR geometry; one fused round-and-
  // subtract in double keeps the reduced argument to < 1 ulp of 2*pi.
  const double n = std::nearbyint(x / kTwoPi);
  return x - n * kTwoPi;
}

SinCos sincos_poly(float reduced) {
  // Fold [-pi, pi] into a quadrant index and a residual in [-pi/4, pi/4].
  const float quadrant_f = std::nearbyintf(reduced / kPiOver2F);
  const int quadrant = static_cast<int>(quadrant_f) & 3;  // -2..2 -> 0..3
  const float r = reduced - quadrant_f * kPiOver2F;
  const float s = sin_core(r);
  const float c = cos_core(r);
  switch (quadrant) {
    case 0: return {s, c};
    case 1: return {c, -s};
    case 2: return {-s, -c};
    default: return {-c, s};
  }
}

SinCos sincos_poly_ep(float reduced) {
  // Degree-3/4 cores: |err| ~ 2.5e-3 (sin) / 3.3e-4 (cos) at the quadrant
  // edge — the ~11-significant-bit EP operating point.
  const float quadrant_f = std::nearbyintf(reduced / kPiOver2F);
  const int quadrant = static_cast<int>(quadrant_f) & 3;
  const float r = reduced - quadrant_f * kPiOver2F;
  const float r2 = r * r;
  const float s = r * (1.0f - 1.6666667163e-1f * r2);
  const float c = 1.0f + r2 * (-5.0e-1f + 4.1666667908e-2f * r2);
  switch (quadrant) {
    case 0: return {s, c};
    case 1: return {c, -s};
    case 2: return {-s, -c};
    default: return {-c, s};
  }
}

SinCos sincos_baseline(double x) { return sincos_poly(static_cast<float>(reduce_to_pi(x))); }

SinCos sincos_baseline_ep(double x) {
  return sincos_poly_ep(static_cast<float>(reduce_to_pi(x)));
}

SinCos sincos_float_reduction(float x) {
  const float n = std::nearbyintf(x / static_cast<float>(kTwoPi));
  const float reduced = x - n * static_cast<float>(kTwoPi);
  return sincos_poly(reduced);
}

}  // namespace sarbp::signal
