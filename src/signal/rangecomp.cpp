#include "signal/rangecomp.h"

#include <algorithm>

#include "common/check.h"

namespace sarbp::signal {

RangeCompressor::RangeCompressor(const ChirpParams& chirp,
                                 std::size_t window_samples, WindowKind taper)
    : window_samples_(window_samples),
      fft_(Fft<double>::next_power_of_two(window_samples +
                                          chirp.samples_per_pulse())) {
  ensure(window_samples > 0, "RangeCompressor: empty receive window");
  // Build conj(FFT(replica)) once. Correlation (not convolution) against
  // the replica keeps a reflector at delay tau at output bin tau*fs.
  const std::vector<CDouble> replica = baseband_chirp(chirp);
  const std::vector<double> w = make_window(taper, replica.size());
  std::vector<CDouble> padded(fft_.size(), CDouble{});
  for (std::size_t i = 0; i < replica.size(); ++i) padded[i] = replica[i] * w[i];
  fft_.forward(padded);
  reference_spectrum_.resize(fft_.size());
  const double norm = 1.0 / static_cast<double>(replica.size());
  for (std::size_t i = 0; i < padded.size(); ++i) {
    reference_spectrum_[i] = std::conj(padded[i]) * norm;
  }
}

void RangeCompressor::compress(std::span<const CDouble> raw,
                               std::span<CFloat> out) const {
  ensure(raw.size() == window_samples_, "RangeCompressor: raw size mismatch");
  ensure(out.size() == window_samples_, "RangeCompressor: out size mismatch");
  std::vector<CDouble> work(fft_.size(), CDouble{});
  std::copy(raw.begin(), raw.end(), work.begin());
  fft_.forward(work);
  for (std::size_t i = 0; i < work.size(); ++i) work[i] *= reference_spectrum_[i];
  fft_.inverse(work);
  for (std::size_t i = 0; i < window_samples_; ++i) {
    out[i] = CFloat(static_cast<float>(work[i].real()),
                    static_cast<float>(work[i].imag()));
  }
}

}  // namespace sarbp::signal
