#include "signal/chebyshev.h"

#include <array>
#include <cmath>
#include <memory>
#include <numbers>

#include "common/check.h"
#include "common/thread_annotations.h"

namespace sarbp::signal {

ChebyshevSeries::ChebyshevSeries(const std::function<double(double)>& f,
                                 double a, double b, int terms)
    : a_(a), b_(b) {
  ensure(terms >= 1, "ChebyshevSeries: need at least one term");
  ensure(b > a, "ChebyshevSeries: empty interval");
  // Sample at the Chebyshev nodes of a generous order, then project.
  const int nodes = std::max(terms + 8, 32);
  std::vector<double> fx(static_cast<std::size_t>(nodes));
  for (int k = 0; k < nodes; ++k) {
    const double theta = std::numbers::pi * (static_cast<double>(k) + 0.5) /
                         static_cast<double>(nodes);
    const double t = std::cos(theta);
    fx[static_cast<std::size_t>(k)] = f(0.5 * (a + b) + 0.5 * (b - a) * t);
  }
  coefficients_.resize(static_cast<std::size_t>(terms));
  // Two extra coefficients for the truncation estimate: odd/even functions
  // have alternating zero coefficients, so a single dropped term can be
  // deceptively small.
  for (int j = 0; j < terms + 2; ++j) {
    double c = 0.0;
    for (int k = 0; k < nodes; ++k) {
      const double theta = std::numbers::pi * (static_cast<double>(k) + 0.5) /
                           static_cast<double>(nodes);
      c += fx[static_cast<std::size_t>(k)] *
           std::cos(static_cast<double>(j) * theta);
    }
    c *= 2.0 / static_cast<double>(nodes);
    if (j < terms) {
      coefficients_[static_cast<std::size_t>(j)] = c;
    } else {
      truncation_estimate_ = std::max(truncation_estimate_, std::abs(c));
    }
  }
}

double ChebyshevSeries::evaluate(double x) const {
  const double t = (2.0 * x - a_ - b_) / (b_ - a_);
  const double t2 = 2.0 * t;
  double d = 0.0;
  double dd = 0.0;
  for (std::size_t j = coefficients_.size(); j-- > 1;) {
    const double sv = d;
    d = t2 * d - dd + coefficients_[j];
    dd = sv;
  }
  return t * d - dd + 0.5 * coefficients_[0];
}

namespace {

constexpr float kPiOver2F = 1.57079632679489662f;

struct SinCosPlan {
  ChebyshevSeries sin_series;
  ChebyshevSeries cos_series;
};

const SinCosPlan& plan_for(int degree) {
  ensure(degree >= 1 && degree <= 16, "sincos_chebyshev: degree in [1, 16]");
  static std::array<std::unique_ptr<SinCosPlan>, 17> plans;
  static Mutex mutex{SARBP_LOCK_LEVEL("signal.chebyshev")};
  MutexLock lock(mutex);
  auto& slot = plans[static_cast<std::size_t>(degree)];
  if (!slot) {
    const double q = std::numbers::pi / 4.0;
    slot = std::make_unique<SinCosPlan>(SinCosPlan{
        ChebyshevSeries([](double x) { return std::sin(x); }, -q, q,
                        degree + 1),
        ChebyshevSeries([](double x) { return std::cos(x); }, -q, q,
                        degree + 1)});
  }
  return *slot;
}

}  // namespace

SinCos sincos_chebyshev(float reduced, int degree) {
  const SinCosPlan& plan = plan_for(degree);
  const float quadrant_f = std::nearbyintf(reduced / kPiOver2F);
  const int quadrant = static_cast<int>(quadrant_f) & 3;
  const double r = static_cast<double>(reduced) -
                   static_cast<double>(quadrant_f) * kPiOver2F;
  const auto s = static_cast<float>(plan.sin_series.evaluate(r));
  const auto c = static_cast<float>(plan.cos_series.evaluate(r));
  switch (quadrant) {
    case 0: return {s, c};
    case 1: return {c, -s};
    case 2: return {-s, -c};
    default: return {-c, s};
  }
}

}  // namespace sarbp::signal
