// Chebyshev-based polynomial approximation — the trig foundation the paper
// cites (§6): "Trigonometric functions are typically computed by
// polynomials derived from the Chebyshev approximation, whose coefficients
// are similar to those of Taylor polynomials but provide a near optimal
// solution (i.e., the maximum error is very close to the smallest possible
// for any polynomial of the same degree)."
//
// General machinery (fit any f on [a, b] to a Chebyshev series, truncate,
// evaluate via Clenshaw) plus ready-made sin/cos evaluators at selectable
// degree, for the trig-strategy comparison bench.
#pragma once

#include <functional>
#include <vector>

#include "signal/trig.h"

namespace sarbp::signal {

/// Chebyshev series of f on [a, b], truncated to `terms` coefficients.
class ChebyshevSeries {
 public:
  ChebyshevSeries(const std::function<double(double)>& f, double a, double b,
                  int terms);

  [[nodiscard]] double evaluate(double x) const;  ///< Clenshaw recurrence
  [[nodiscard]] const std::vector<double>& coefficients() const {
    return coefficients_;
  }
  [[nodiscard]] double a() const { return a_; }
  [[nodiscard]] double b() const { return b_; }

  /// Magnitude of the first dropped coefficient: the classic truncation
  /// error estimate (near-minimax property).
  [[nodiscard]] double truncation_estimate() const {
    return truncation_estimate_;
  }

 private:
  double a_;
  double b_;
  std::vector<double> coefficients_;
  double truncation_estimate_ = 0.0;
};

/// sin/cos on [-pi/4, pi/4] with Chebyshev polynomials of the requested
/// polynomial degree (quadrant folding handles the rest). Plans are cached
/// per degree.
SinCos sincos_chebyshev(float reduced, int degree = 7);

}  // namespace sarbp::signal
