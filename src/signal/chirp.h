// Linear-frequency-modulated (LFM) chirp waveform model.
//
// The paper's simulated input "assumes linear frequency modulated pulses
// (i.e., chirp)" (§5.1). The collector transmits this waveform; range
// compression matched-filters against it.
#pragma once

#include <vector>

#include "common/check.h"
#include "common/types.h"

namespace sarbp::signal {

/// Physical chirp parameters. All SI units.
struct ChirpParams {
  double carrier_hz = 9.6e9;     ///< f0: X-band carrier
  double bandwidth_hz = 300.0e6; ///< B: swept bandwidth (range resolution c/2B)
  double duration_s = 10.0e-6;   ///< Tp: pulse length
  double sample_rate_hz = 360.0e6;  ///< fs: complex baseband sampling rate

  [[nodiscard]] double chirp_rate() const { return bandwidth_hz / duration_s; }
  /// Range-bin spacing after compression: dr = c / (2 fs).
  [[nodiscard]] double range_bin_spacing() const;
  /// Range resolution of the compressed pulse: c / (2 B).
  [[nodiscard]] double range_resolution() const;
  /// Number of samples across the transmitted pulse.
  [[nodiscard]] std::size_t samples_per_pulse() const;
  /// Carrier wavenumber factor k = 2 f0 / c, so the two-way carrier phase
  /// at range r is 2*pi*k*r — the `k` of the paper's Fig. 3.
  [[nodiscard]] double wavenumber() const;

  void validate() const;
};

/// Complex-baseband samples of the transmitted chirp:
/// s(t) = exp(i*pi*gamma*(t - Tp/2)^2), t in [0, Tp), centred sweep.
std::vector<CDouble> baseband_chirp(const ChirpParams& params);

/// Speed of light (m/s), shared constant.
inline constexpr double kSpeedOfLight = 299792458.0;

}  // namespace sarbp::signal
