#include "signal/fft2d.h"

#include <vector>

namespace sarbp::signal {

template <class T>
void Fft2D<T>::transform(Grid2D<std::complex<T>>& grid,
                         FftDirection dir) const {
  ensure(grid.width() == width_ && grid.height() == height_,
         "Fft2D: grid shape mismatch");
  for (Index y = 0; y < height_; ++y) {
    row_fft_.transform(grid.row(y), dir);
  }
  // Columns go through a contiguous scratch buffer: the strided gather is
  // cheap relative to the transform and keeps the 1D core cache-friendly.
  std::vector<std::complex<T>> column(static_cast<std::size_t>(height_));
  for (Index x = 0; x < width_; ++x) {
    for (Index y = 0; y < height_; ++y) column[static_cast<std::size_t>(y)] = grid.at(x, y);
    col_fft_.transform(column, dir);
    for (Index y = 0; y < height_; ++y) grid.at(x, y) = column[static_cast<std::size_t>(y)];
  }
}

template class Fft2D<float>;
template class Fft2D<double>;

}  // namespace sarbp::signal
