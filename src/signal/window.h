// Tapering windows for pulse shaping and sidelobe control.
#pragma once

#include <cstddef>
#include <vector>

namespace sarbp::signal {

enum class WindowKind { kRect, kHann, kHamming, kBlackman, kTaylor };

/// Generates an n-point window of the requested kind.
/// The Taylor window (nbar = 4, -35 dB sidelobes) is the SAR community
/// default for range/cross-range weighting.
std::vector<double> make_window(WindowKind kind, std::size_t n);

/// Taylor window with explicit parameters: `nbar` nearly-constant-level
/// sidelobes at `sidelobe_db` (negative, e.g. -35).
std::vector<double> taylor_window(std::size_t n, int nbar, double sidelobe_db);

}  // namespace sarbp::signal
