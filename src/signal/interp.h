// Interpolators.
//
// - linear_interp: the paper's `interp(In, bin)` — the backprojection
//   inner loop's irregular read (Fig. 3 caption gives the exact formula).
// - sinc_interp: higher-quality windowed-sinc variant used to quantify the
//   quality/cost trade-off of the linear choice.
// - bilinear: 2D resampling used by the registration stage.
#pragma once

#include <span>

#include "common/grid2d.h"
#include "common/types.h"

namespace sarbp::signal {

/// (1 - frac) * in[floor(bin)] + frac * in[floor(bin)+1].
/// Out-of-range bins return zero (pulse data does not wrap).
template <class T>
[[nodiscard]] inline std::complex<T> linear_interp(
    std::span<const std::complex<T>> in, double bin) {
  if (!(bin >= 0.0)) return {};
  const auto i = static_cast<std::size_t>(bin);
  if (i + 1 >= in.size()) return {};
  const T frac = static_cast<T>(bin - static_cast<double>(i));
  const T one_minus = T(1) - frac;
  return std::complex<T>(one_minus * in[i].real() + frac * in[i + 1].real(),
                         one_minus * in[i].imag() + frac * in[i + 1].imag());
}

/// Windowed-sinc interpolation with `taps` points per side (Hann taper).
CDouble sinc_interp(std::span<const CDouble> in, double bin, int taps = 8);
CFloat sinc_interp(std::span<const CFloat> in, double bin, int taps = 8);

/// Bilinear sample of a complex image at fractional (x, y).
/// Out-of-image coordinates return zero.
CFloat bilinear(const Grid2D<CFloat>& image, double x, double y);

/// Bilinear sample of a real image.
float bilinear(const Grid2D<float>& image, double x, double y);

}  // namespace sarbp::signal
