#include "signal/chirp.h"

#include <cmath>
#include <numbers>

namespace sarbp::signal {

double ChirpParams::range_bin_spacing() const {
  return kSpeedOfLight / (2.0 * sample_rate_hz);
}

double ChirpParams::range_resolution() const {
  return kSpeedOfLight / (2.0 * bandwidth_hz);
}

std::size_t ChirpParams::samples_per_pulse() const {
  // Round-to-nearest: ceil() would turn an exact product like 3600.0 into
  // 3601 through floating-point representation error.
  return static_cast<std::size_t>(std::llround(duration_s * sample_rate_hz));
}

double ChirpParams::wavenumber() const {
  return 2.0 * carrier_hz / kSpeedOfLight;
}

void ChirpParams::validate() const {
  sarbp::ensure(carrier_hz > 0, "chirp: carrier must be positive");
  sarbp::ensure(bandwidth_hz > 0, "chirp: bandwidth must be positive");
  sarbp::ensure(duration_s > 0, "chirp: duration must be positive");
  sarbp::ensure(sample_rate_hz >= bandwidth_hz,
                "chirp: baseband sampling below Nyquist for the swept band");
}

std::vector<CDouble> baseband_chirp(const ChirpParams& params) {
  params.validate();
  const std::size_t n = params.samples_per_pulse();
  const double gamma = params.chirp_rate();
  const double dt = 1.0 / params.sample_rate_hz;
  std::vector<CDouble> samples(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) * dt - 0.5 * params.duration_s;
    const double phase = std::numbers::pi * gamma * t * t;
    samples[i] = {std::cos(phase), std::sin(phase)};
  }
  return samples;
}

}  // namespace sarbp::signal
