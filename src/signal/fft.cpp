#include "signal/fft.h"

#include <cmath>
#include <numbers>

namespace sarbp::signal {
namespace {

// Twiddles are always generated in double then narrowed: for float plans
// this costs nothing at plan time and keeps the root-of-unity error at the
// float rounding floor instead of accumulating.
template <class T>
std::complex<T> unit_root(double numerator_turns, double denominator) {
  const double angle = 2.0 * std::numbers::pi * numerator_turns / denominator;
  return {static_cast<T>(std::cos(angle)), static_cast<T>(std::sin(angle))};
}

std::vector<std::size_t> make_bitrev(std::size_t n) {
  std::vector<std::size_t> rev(n);
  std::size_t log2n = 0;
  while ((std::size_t{1} << log2n) < n) ++log2n;
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t r = 0;
    for (std::size_t b = 0; b < log2n; ++b) {
      if (i & (std::size_t{1} << b)) r |= std::size_t{1} << (log2n - 1 - b);
    }
    rev[i] = r;
  }
  return rev;
}

}  // namespace

template <class T>
std::size_t Fft<T>::next_power_of_two(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

template <class T>
Fft<T>::Fft(std::size_t n) : n_(n), pow2_(is_power_of_two(n)) {
  ensure(n > 0, "Fft size must be positive");
  if (pow2_) {
    m_ = n_;
  } else {
    // Bluestein turns a length-n DFT into a cyclic convolution of length
    // >= 2n-1; round up to a power of two for the radix-2 core.
    m_ = next_power_of_two(2 * n_ - 1);
  }
  bitrev_ = make_bitrev(m_);
  twiddle_.resize(m_ / 2);
  for (std::size_t k = 0; k < m_ / 2; ++k) {
    // Forward convention: X_k = sum x_j exp(-2*pi*i*jk/N).
    twiddle_[k] = unit_root<T>(-static_cast<double>(k), static_cast<double>(m_));
  }
  if (!pow2_) {
    chirp_.resize(n_);
    for (std::size_t k = 0; k < n_; ++k) {
      // exp(-i*pi*k^2/n); k^2 is reduced mod 2n first so the angle stays
      // small and accurate even for large k.
      const std::size_t k2 = (k * k) % (2 * n_);
      chirp_[k] =
          unit_root<T>(-0.5 * static_cast<double>(k2), static_cast<double>(n_));
    }
    chirp_filter_fwd_.assign(m_, std::complex<T>{});
    chirp_filter_fwd_[0] = std::conj(chirp_[0]);
    for (std::size_t k = 1; k < n_; ++k) {
      chirp_filter_fwd_[k] = std::conj(chirp_[k]);
      chirp_filter_fwd_[m_ - k] = std::conj(chirp_[k]);
    }
    pow2_transform(chirp_filter_fwd_, /*inverse=*/false);
  }
}

template <class T>
void Fft<T>::pow2_transform(std::span<std::complex<T>> data,
                            bool inverse) const {
  const std::size_t n = data.size();
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t j = bitrev_[i];
    if (i < j) std::swap(data[i], data[j]);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const std::size_t half = len / 2;
    const std::size_t stride = m_ / len;  // twiddle table is for size m_
    for (std::size_t base = 0; base < n; base += len) {
      for (std::size_t k = 0; k < half; ++k) {
        std::complex<T> w = twiddle_[k * stride];
        if (inverse) w = std::conj(w);
        const std::complex<T> odd = data[base + k + half] * w;
        const std::complex<T> even = data[base + k];
        data[base + k] = even + odd;
        data[base + k + half] = even - odd;
      }
    }
  }
}

template <class T>
void Fft<T>::bluestein_transform(std::span<std::complex<T>> data,
                                 bool inverse) const {
  // DFT via chirp-z: X_k = conj(b_k) * sum_j (x_j conj(b_j)) b_{k-j}
  // with b_k = exp(-i*pi*k^2/n) for the forward direction.
  std::vector<std::complex<T>> a(m_, std::complex<T>{});
  for (std::size_t j = 0; j < n_; ++j) {
    const std::complex<T> c = inverse ? std::conj(chirp_[j]) : chirp_[j];
    a[j] = data[j] * c;
  }
  pow2_transform(a, /*inverse=*/false);
  if (inverse) {
    // The inverse-direction filter is the conjugate chirp; its forward FFT
    // is the conjugate-reverse of the stored one. Recompute on the fly from
    // the identity FFT(conj(x))_k = conj(FFT(x)_{-k}).
    for (std::size_t k = 0; k < m_; ++k) {
      const std::size_t rk = k == 0 ? 0 : m_ - k;
      a[k] *= std::conj(chirp_filter_fwd_[rk]);
    }
  } else {
    for (std::size_t k = 0; k < m_; ++k) a[k] *= chirp_filter_fwd_[k];
  }
  pow2_transform(a, /*inverse=*/true);
  const T inv_m = static_cast<T>(1.0 / static_cast<double>(m_));
  for (std::size_t k = 0; k < n_; ++k) {
    const std::complex<T> c = inverse ? std::conj(chirp_[k]) : chirp_[k];
    data[k] = a[k] * inv_m * c;
  }
}

template <class T>
void Fft<T>::forward(std::span<std::complex<T>> data) const {
  ensure(data.size() == n_, "Fft::forward: size mismatch");
  pow2_ ? pow2_transform(data, false) : bluestein_transform(data, false);
}

template <class T>
void Fft<T>::inverse(std::span<std::complex<T>> data) const {
  ensure(data.size() == n_, "Fft::inverse: size mismatch");
  pow2_ ? pow2_transform(data, true) : bluestein_transform(data, true);
  const T inv_n = static_cast<T>(1.0 / static_cast<double>(n_));
  for (auto& v : data) v *= inv_n;
}

template class Fft<float>;
template class Fft<double>;

}  // namespace sarbp::signal
