#include "signal/interp.h"

#include <cmath>
#include <numbers>

namespace sarbp::signal {
namespace {

double sinc(double x) {
  if (std::abs(x) < 1e-12) return 1.0;
  const double px = std::numbers::pi * x;
  return std::sin(px) / px;
}

template <class T>
std::complex<T> sinc_interp_impl(std::span<const std::complex<T>> in,
                                 double bin, int taps) {
  if (!(bin >= 0.0) || bin > static_cast<double>(in.size() - 1)) return {};
  const auto centre = static_cast<std::ptrdiff_t>(std::floor(bin));
  std::complex<double> acc{};
  double weight_sum = 0.0;
  for (std::ptrdiff_t j = centre - taps + 1; j <= centre + taps; ++j) {
    if (j < 0 || j >= static_cast<std::ptrdiff_t>(in.size())) continue;
    const double d = bin - static_cast<double>(j);
    // Hann-tapered sinc kernel over [-taps, taps].
    const double hann =
        0.5 + 0.5 * std::cos(std::numbers::pi * d / static_cast<double>(taps));
    const double w = sinc(d) * hann;
    acc += std::complex<double>(in[static_cast<std::size_t>(j)].real(),
                                in[static_cast<std::size_t>(j)].imag()) *
           w;
    weight_sum += w * sinc(0.0);  // normalization reference
  }
  (void)weight_sum;  // classic windowed sinc is used unnormalized
  return {static_cast<T>(acc.real()), static_cast<T>(acc.imag())};
}

template <class G>
auto bilinear_impl(const G& image, double x, double y) ->
    typename std::remove_cvref_t<decltype(image.at(0, 0))> {
  using Pixel = typename std::remove_cvref_t<decltype(image.at(0, 0))>;
  if (!(x >= 0.0) || !(y >= 0.0)) return Pixel{};
  const auto x0 = static_cast<Index>(x);
  const auto y0 = static_cast<Index>(y);
  if (x0 + 1 >= image.width() || y0 + 1 >= image.height()) return Pixel{};
  const double fx = x - static_cast<double>(x0);
  const double fy = y - static_cast<double>(y0);
  const auto p00 = image.at(x0, y0);
  const auto p10 = image.at(x0 + 1, y0);
  const auto p01 = image.at(x0, y0 + 1);
  const auto p11 = image.at(x0 + 1, y0 + 1);
  // 54-FLOP bilinear of the paper's Table 5 model counts complex pixels;
  // the expression below is the standard separable form.
  const auto top = p00 + (p10 - p00) * static_cast<float>(fx);
  const auto bottom = p01 + (p11 - p01) * static_cast<float>(fx);
  return top + (bottom - top) * static_cast<float>(fy);
}

}  // namespace

CDouble sinc_interp(std::span<const CDouble> in, double bin, int taps) {
  return sinc_interp_impl(in, bin, taps);
}

CFloat sinc_interp(std::span<const CFloat> in, double bin, int taps) {
  return sinc_interp_impl(in, bin, taps);
}

CFloat bilinear(const Grid2D<CFloat>& image, double x, double y) {
  return bilinear_impl(image, x, y);
}

float bilinear(const Grid2D<float>& image, double x, double y) {
  return bilinear_impl(image, x, y);
}

}  // namespace sarbp::signal
