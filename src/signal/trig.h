// Vectorizable polynomial sine/cosine with double-precision argument
// reduction — the paper's *baseline* trig path (§5.2.1): "sine and cosine
// are computed by approximation polynomials that are vectorized and yield
// an accuracy equivalent to that of Intel MKL VML in the Enhanced
// Performance mode", with the reduction of the (large, e.g. 2*pi*k*r with
// r ~ 20 km) argument done in double because doing it in single collapses
// accuracy to ~12 dB (Fig. 8 discussion).
#pragma once

#include <utility>

namespace sarbp::signal {

/// Reduces x to y in [-pi, pi] with x = y + 2*pi*n, carried out entirely in
/// double precision. This is the accuracy-critical step the baseline cannot
/// avoid and ASR eliminates.
double reduce_to_pi(double x);

/// sin/cos of an argument already reduced to [-pi, pi], evaluated with
/// single-precision minimax-style polynomials (degree 7/8 Taylor-Chebyshev
/// hybrids over [-pi/4, pi/4] after quadrant folding). Branch-light so a
/// compiler can vectorize a loop of these.
struct SinCos {
  float sin;
  float cos;
};
SinCos sincos_poly(float reduced);

/// Lower-degree polynomials matching the accuracy of Intel MKL VML's
/// Enhanced Performance (EP) mode — the trig accuracy the paper's baseline
/// actually ran at (§5.2.1: "an accuracy equivalent to that of Intel MKL
/// VML in the Enhanced Performance mode", 55 dB image SNR in Fig. 8).
SinCos sincos_poly_ep(float reduced);

/// Convenience: full baseline path — double reduction then float polys
/// (high-accuracy variant).
SinCos sincos_baseline(double x);

/// The paper-baseline path: double reduction then EP-accuracy polynomials.
SinCos sincos_baseline_ep(double x);

/// Deliberately wrong-precision variant: reduction done in *single*
/// precision. Reproduces the 12 dB accuracy collapse of Fig. 8's
/// "float r + libm" data point.
SinCos sincos_float_reduction(float x);

}  // namespace sarbp::signal
