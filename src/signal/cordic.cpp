#include "signal/cordic.h"

#include <array>
#include <cmath>
#include <numbers>

#include "common/check.h"

namespace sarbp::signal {
namespace {

constexpr int kMaxIterations = 30;
constexpr int kFracBits = 30;  // Q2.30 fixed point
constexpr double kOne = static_cast<double>(std::int64_t{1} << kFracBits);

struct CordicTables {
  std::array<std::int64_t, kMaxIterations> angles;  // atan(2^-i), Q2.30 rad
  std::array<double, kMaxIterations + 1> gain;      // cumulative K
};

const CordicTables& tables() {
  static const CordicTables t = [] {
    CordicTables out{};
    double k = 1.0;
    out.gain[0] = 1.0;
    for (int i = 0; i < kMaxIterations; ++i) {
      out.angles[static_cast<std::size_t>(i)] = static_cast<std::int64_t>(
          std::llround(std::atan(std::ldexp(1.0, -i)) * kOne));
      k *= 1.0 / std::sqrt(1.0 + std::ldexp(1.0, -2 * i));
      out.gain[static_cast<std::size_t>(i) + 1] = k;
    }
    return out;
  }();
  return t;
}

}  // namespace

SinCos sincos_cordic(float reduced_half_pi, int iterations) {
  ensure(iterations >= 1 && iterations <= kMaxIterations,
         "sincos_cordic: iterations out of range");
  const auto& t = tables();
  // Start on the x-axis scaled by the inverse cumulative gain, so the
  // result needs no post-multiply (multiplier-free, as in hardware).
  auto x = static_cast<std::int64_t>(
      std::llround(t.gain[static_cast<std::size_t>(iterations)] * kOne));
  std::int64_t y = 0;
  auto z = static_cast<std::int64_t>(
      std::llround(static_cast<double>(reduced_half_pi) * kOne));
  for (int i = 0; i < iterations; ++i) {
    const std::int64_t dx = y >> i;
    const std::int64_t dy = x >> i;
    const std::int64_t da = t.angles[static_cast<std::size_t>(i)];
    if (z >= 0) {
      x -= dx;
      y += dy;
      z -= da;
    } else {
      x += dx;
      y -= dy;
      z += da;
    }
  }
  return {static_cast<float>(static_cast<double>(y) / kOne),
          static_cast<float>(static_cast<double>(x) / kOne)};
}

SinCos sincos_cordic_full(double arg, int iterations) {
  const double reduced = reduce_to_pi(arg);
  // Fold [-pi, pi] into [-pi/2, pi/2]: sin(pi - r) = sin(r),
  // cos(pi - r) = -cos(r) (and the mirrored case for r < -pi/2).
  if (reduced > std::numbers::pi / 2) {
    const SinCos sc = sincos_cordic(
        static_cast<float>(std::numbers::pi - reduced), iterations);
    return {sc.sin, -sc.cos};
  }
  if (reduced < -std::numbers::pi / 2) {
    const SinCos sc = sincos_cordic(
        static_cast<float>(-std::numbers::pi - reduced), iterations);
    return {sc.sin, -sc.cos};
  }
  return sincos_cordic(static_cast<float>(reduced), iterations);
}

double cordic_error_bound(int iterations) {
  ensure(iterations >= 1 && iterations <= kMaxIterations,
         "cordic_error_bound: iterations out of range");
  // Residual rotation angle <= atan(2^-(n-1)) plus a few ulps of the Q2.30
  // datapath per iteration.
  return std::atan(std::ldexp(1.0, -(iterations - 1))) +
         static_cast<double>(iterations + 2) / kOne * 4.0;
}

}  // namespace sarbp::signal
