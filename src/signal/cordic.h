// CORDIC sine/cosine — the related-work trig baseline of paper §6:
// "CORDIC is another method of computing trigonometric functions, but it
// is used only in simple hardware without multipliers and floating point
// units. Similar to Chebyshev-approximation-based approaches, CORDIC also
// requires arguments to be in a certain range (e.g., [-pi/2, pi/2])."
//
// Implemented in fixed point (as real CORDIC hardware is) so the bench can
// compare its iteration count / accuracy trade-off against the polynomial
// and ASR approaches.
#pragma once

#include <cstdint>

#include "signal/trig.h"

namespace sarbp::signal {

/// sin/cos via `iterations` CORDIC rotations. The argument must already be
/// reduced to [-pi/2, pi/2] (the hardware-unit constraint the paper calls
/// out); use reduce_to_pi + quadrant folding for general arguments.
SinCos sincos_cordic(float reduced_half_pi, int iterations = 24);

/// General-argument wrapper: double reduction, quadrant fold, CORDIC core.
SinCos sincos_cordic_full(double x, int iterations = 24);

/// Worst-case absolute error bound of the fixed-point core after
/// `iterations` rotations: angle residual + fixed-point quantization.
double cordic_error_bound(int iterations);

}  // namespace sarbp::signal
