// Image export/import: 8-bit PGM renderings (magnitude, optionally
// log-compressed — the B-display convention) for quick inspection, and
// NumPy .npy (complex64) for quantitative work in Python.
#pragma once

#include <string>

#include "common/grid2d.h"
#include "common/types.h"

namespace sarbp::io {

struct PgmOptions {
  /// Log-compress magnitudes over this dynamic range (dB) below the peak;
  /// 0 = linear scaling.
  double dynamic_range_db = 40.0;
};

/// Writes the magnitude image as binary PGM (P5). Throws on I/O failure.
void write_pgm(const std::string& path, const Grid2D<CFloat>& image,
               const PgmOptions& options = {});

/// Writes a complex image as NumPy .npy, dtype complex64, C order,
/// shape (height, width).
void write_npy(const std::string& path, const Grid2D<CFloat>& image);

/// Reads a complex64 .npy written by write_npy (same restrictions: 2D,
/// C order, little endian).
Grid2D<CFloat> read_npy(const std::string& path);

/// Writes a real image (e.g. a CCD correlation map) as float32 .npy.
void write_npy(const std::string& path, const Grid2D<float>& image);

}  // namespace sarbp::io
