#include "io/image_io.h"

#include <algorithm>
#include <cmath>
#include <complex>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/check.h"

namespace sarbp::io {
namespace {

void write_npy_raw(const std::string& path, const void* data,
                   std::size_t bytes, const std::string& descr, Index width,
                   Index height) {
  // NPY format v1.0: magic, version, little-endian header length, then a
  // Python-dict header padded with spaces to a 64-byte boundary.
  std::ostringstream header;
  header << "{'descr': '" << descr << "', 'fortran_order': False, 'shape': ("
         << height << ", " << width << "), }";
  std::string h = header.str();
  const std::size_t unpadded = 10 + h.size() + 1;
  const std::size_t padded = (unpadded + 63) / 64 * 64;
  h.append(padded - unpadded, ' ');
  h.push_back('\n');

  std::ofstream out(path, std::ios::binary);
  ensure(out.good(), "write_npy: cannot open " + path);
  const char magic[] = "\x93NUMPY";
  out.write(magic, 6);
  out.put('\x01');
  out.put('\x00');
  const auto hlen = static_cast<std::uint16_t>(h.size());
  out.put(static_cast<char>(hlen & 0xff));
  out.put(static_cast<char>(hlen >> 8));
  out.write(h.data(), static_cast<std::streamsize>(h.size()));
  out.write(static_cast<const char*>(data), static_cast<std::streamsize>(bytes));
  ensure(out.good(), "write_npy: write failed for " + path);
}

}  // namespace

void write_pgm(const std::string& path, const Grid2D<CFloat>& image,
               const PgmOptions& options) {
  ensure(image.size() > 0, "write_pgm: empty image");
  double peak = 0.0;
  for (const auto& v : image.flat()) {
    peak = std::max(peak, static_cast<double>(std::abs(v)));
  }
  if (peak <= 0.0) peak = 1.0;

  std::ofstream out(path, std::ios::binary);
  ensure(out.good(), "write_pgm: cannot open " + path);
  out << "P5\n" << image.width() << " " << image.height() << "\n255\n";
  for (Index y = 0; y < image.height(); ++y) {
    for (Index x = 0; x < image.width(); ++x) {
      const double mag = std::abs(image.at(x, y)) / peak;
      double level;
      if (options.dynamic_range_db > 0.0) {
        const double db = 20.0 * std::log10(std::max(mag, 1e-12));
        level = (db + options.dynamic_range_db) / options.dynamic_range_db;
      } else {
        level = mag;
      }
      const int byte = std::clamp(static_cast<int>(level * 255.0), 0, 255);
      out.put(static_cast<char>(byte));
    }
  }
  ensure(out.good(), "write_pgm: write failed for " + path);
}

void write_npy(const std::string& path, const Grid2D<CFloat>& image) {
  write_npy_raw(path, image.data(),
                static_cast<std::size_t>(image.size()) * sizeof(CFloat),
                "<c8", image.width(), image.height());
}

void write_npy(const std::string& path, const Grid2D<float>& image) {
  write_npy_raw(path, image.data(),
                static_cast<std::size_t>(image.size()) * sizeof(float), "<f4",
                image.width(), image.height());
}

Grid2D<CFloat> read_npy(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  ensure(in.good(), "read_npy: cannot open " + path);
  char magic[6];
  in.read(magic, 6);
  ensure(in.good() && std::memcmp(magic, "\x93NUMPY", 6) == 0,
         "read_npy: not an NPY file: " + path);
  char version[2];
  in.read(version, 2);
  ensure(version[0] == 1, "read_npy: unsupported NPY version");
  unsigned char len_bytes[2];
  in.read(reinterpret_cast<char*>(len_bytes), 2);
  const std::size_t hlen = static_cast<std::size_t>(len_bytes[0]) |
                           (static_cast<std::size_t>(len_bytes[1]) << 8);
  std::string header(hlen, '\0');
  in.read(header.data(), static_cast<std::streamsize>(hlen));
  ensure(header.find("'<c8'") != std::string::npos,
         "read_npy: expected complex64 data");
  ensure(header.find("False") != std::string::npos,
         "read_npy: expected C-order data");
  const auto shape_pos = header.find("'shape': (");
  ensure(shape_pos != std::string::npos, "read_npy: malformed header");
  Index height = 0;
  Index width = 0;
  std::sscanf(header.c_str() + shape_pos, "'shape': (%td, %td)", &height,
              &width);
  ensure(width > 0 && height > 0, "read_npy: bad shape");
  Grid2D<CFloat> image(width, height);
  in.read(reinterpret_cast<char*>(image.data()),
          static_cast<std::streamsize>(static_cast<std::size_t>(image.size()) *
                                       sizeof(CFloat)));
  ensure(in.good(), "read_npy: truncated data in " + path);
  return image;
}

}  // namespace sarbp::io
