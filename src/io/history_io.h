// Binary phase-history persistence: a simple versioned container for
// range-compressed pulse batches (samples + per-pulse metadata), so
// collections can be generated once and replayed across benchmark runs or
// shared between tools.
#pragma once

#include <string>

#include "sim/phase_history.h"

namespace sarbp::io {

/// Writes the full phase history (shape, dr, k, per-pulse metadata, AoS
/// samples) to `path`. Little-endian; throws on I/O failure.
void save_phase_history(const std::string& path,
                        const sim::PhaseHistory& history);

/// Reads a file written by save_phase_history (SoA planes are rebuilt).
sim::PhaseHistory load_phase_history(const std::string& path);

}  // namespace sarbp::io
