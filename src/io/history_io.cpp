#include "io/history_io.h"

#include <cstdint>
#include <cstring>
#include <fstream>

#include "common/check.h"

namespace sarbp::io {
namespace {

constexpr char kMagic[8] = {'S', 'A', 'R', 'B', 'P', 'P', 'H', '1'};

struct Header {
  char magic[8];
  std::int64_t num_pulses;
  std::int64_t samples_per_pulse;
  double bin_spacing;
  double wavenumber;
};

}  // namespace

void save_phase_history(const std::string& path,
                        const sim::PhaseHistory& history) {
  std::ofstream out(path, std::ios::binary);
  ensure(out.good(), "save_phase_history: cannot open " + path);
  Header header{};
  std::memcpy(header.magic, kMagic, sizeof(kMagic));
  header.num_pulses = history.num_pulses();
  header.samples_per_pulse = history.samples_per_pulse();
  header.bin_spacing = history.bin_spacing();
  header.wavenumber = history.wavenumber();
  out.write(reinterpret_cast<const char*>(&header), sizeof(header));
  for (Index p = 0; p < history.num_pulses(); ++p) {
    const sim::PulseMeta& meta = history.meta(p);
    out.write(reinterpret_cast<const char*>(&meta), sizeof(meta));
  }
  for (Index p = 0; p < history.num_pulses(); ++p) {
    const auto pulse = history.pulse(p);
    out.write(reinterpret_cast<const char*>(pulse.data()),
              static_cast<std::streamsize>(pulse.size_bytes()));
  }
  ensure(out.good(), "save_phase_history: write failed for " + path);
}

sim::PhaseHistory load_phase_history(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  ensure(in.good(), "load_phase_history: cannot open " + path);
  Header header{};
  in.read(reinterpret_cast<char*>(&header), sizeof(header));
  ensure(in.good() && std::memcmp(header.magic, kMagic, sizeof(kMagic)) == 0,
         "load_phase_history: bad magic in " + path);
  ensure(header.num_pulses >= 0 && header.samples_per_pulse > 0,
         "load_phase_history: corrupt header");
  sim::PhaseHistory history(header.num_pulses, header.samples_per_pulse,
                            header.bin_spacing, header.wavenumber);
  for (Index p = 0; p < history.num_pulses(); ++p) {
    in.read(reinterpret_cast<char*>(&history.meta(p)),
            sizeof(sim::PulseMeta));
  }
  for (Index p = 0; p < history.num_pulses(); ++p) {
    auto pulse = history.pulse(p);
    in.read(reinterpret_cast<char*>(pulse.data()),
            static_cast<std::streamsize>(pulse.size_bytes()));
  }
  ensure(in.good(), "load_phase_history: truncated data in " + path);
  history.build_soa();
  return history;
}

}  // namespace sarbp::io
