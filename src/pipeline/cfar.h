// Constant false alarm rate (CFAR) detection (paper §2): "identifies
// differences between the current and reference images, while maintaining
// a constant false alarm rate under certain statistical assumptions. Its
// complexity is Theta(Ncfar Nd), where Nd denotes the number of pixels for
// which the correlation value produced by CCD falls below a threshold; Nd
// is typically substantially smaller than Ix x Iy."
//
// Cell-averaging CFAR on the decorrelation map d = 1 - gamma: a pixel is a
// detection when its decorrelation exceeds `scale` times the mean
// decorrelation of its local background ring (an Ncfar x Ncfar window minus
// a guard region), evaluated only at candidate pixels (gamma below the
// candidate threshold) — which is exactly where the Theta(Ncfar Nd) bound
// comes from.
#pragma once

#include <vector>

#include "common/grid2d.h"
#include "common/types.h"

namespace sarbp::pipeline {

struct CfarParams {
  /// Background window edge: the paper's Ncfar (25 in Table 1). Odd.
  Index window = 25;
  /// Guard region edge around the cell under test (excluded from the
  /// background estimate so the change itself does not inflate it). Odd.
  Index guard = 5;
  /// Candidate threshold: only pixels with correlation below this are
  /// tested (defines the paper's Nd).
  double candidate_correlation = 0.8;
  /// Detection when decorrelation > scale * background mean decorrelation.
  double scale = 3.0;
  /// Pixels within this margin of the image edge are never tested: their
  /// clipped background windows (and the registration resampler's
  /// zero-padding) bias the statistic. -1 = window/2.
  Index border_margin = -1;
};

struct Detection {
  Index x = 0;
  Index y = 0;
  float correlation = 0.0f;   ///< CCD value at the detection
  float statistic = 0.0f;     ///< decorrelation / background mean

  friend bool operator==(const Detection&, const Detection&) = default;
};

struct CfarResult {
  std::vector<Detection> detections;
  Index candidates = 0;  ///< the paper's Nd for this frame
};

/// Runs CA-CFAR over a CCD correlation map.
CfarResult cfar_detect(const Grid2D<float>& correlation,
                       const CfarParams& params);

}  // namespace sarbp::pipeline
