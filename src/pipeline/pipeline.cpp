#include "pipeline/pipeline.h"

#include <utility>

#include "common/check.h"

namespace sarbp::pipeline {

SurveillancePipeline::SurveillancePipeline(const geometry::ImageGrid& grid,
                                           PipelineConfig config)
    : grid_(grid),
      config_(std::move(config)),
      backprojector_(grid_, config_.backprojection),
      registrar_(config_.registration),
      pulse_queue_(config_.queue_depth),
      image_queue_(config_.queue_depth),
      result_queue_(config_.queue_depth + 2) {
  bp_thread_ = std::thread([this] { backprojection_stage(); });
  post_thread_ = std::thread([this] { post_processing_stage(); });
}

SurveillancePipeline::~SurveillancePipeline() {
  close_input();
  // Drain anything the consumer never collected so the stages can exit.
  result_queue_.close();
  if (bp_thread_.joinable()) bp_thread_.join();
  if (post_thread_.joinable()) post_thread_.join();
}

bool SurveillancePipeline::push_pulses(sim::PhaseHistory batch) {
  return pulse_queue_.push(std::move(batch));
}

std::optional<FrameResult> SurveillancePipeline::pop_result() {
  return result_queue_.pop();
}

void SurveillancePipeline::close_input() { pulse_queue_.close(); }

SectionTimes SurveillancePipeline::cumulative_stage_times() const {
  std::lock_guard lock(times_mutex_);
  return cumulative_times_;
}

void SurveillancePipeline::backprojection_stage() {
  bp::IncrementalAccumulator accumulator(grid_.width(), grid_.height(),
                                         config_.accumulation_factor);
  Index frame = 0;
  while (auto batch = pulse_queue_.pop()) {
    FormedImage formed;
    formed.frame = frame++;
    Timer bp_timer;
    Grid2D<CFloat> batch_image(grid_.width(), grid_.height());
    backprojector_.add_pulses(*batch, batch_image);
    formed.stage_seconds["backprojection"] = bp_timer.seconds();
    Timer acc_timer;
    accumulator.push(std::move(batch_image));
    formed.image = accumulator.current();
    formed.stage_seconds["accumulate"] = acc_timer.seconds();

    {
      std::lock_guard lock(times_mutex_);
      for (const auto& [name, secs] : formed.stage_seconds) {
        cumulative_times_.add(name, secs);
      }
    }
    if (!image_queue_.push(std::move(formed))) break;
  }
  image_queue_.close();
}

void SurveillancePipeline::post_processing_stage() {
  std::optional<Grid2D<CFloat>> reference;
  while (auto formed = image_queue_.pop()) {
    FrameResult result;
    result.frame = formed->frame;
    result.stage_seconds = std::move(formed->stage_seconds);

    if (!reference.has_value()) {
      reference = formed->image;
      result.is_reference = true;
      result.image = std::move(formed->image);
    } else {
      Timer reg_timer;
      result.image =
          registrar_.register_image(formed->image, *reference, &result.alignment);
      result.stage_seconds["registration"] = reg_timer.seconds();

      Timer ccd_timer;
      result.correlation = ccd(result.image, *reference, config_.ccd);
      result.stage_seconds["ccd"] = ccd_timer.seconds();

      Timer cfar_timer;
      result.cfar = cfar_detect(result.correlation, config_.cfar);
      result.stage_seconds["cfar"] = cfar_timer.seconds();
    }

    {
      std::lock_guard lock(times_mutex_);
      for (const auto& name : {"registration", "ccd", "cfar"}) {
        const auto it = result.stage_seconds.find(name);
        if (it != result.stage_seconds.end()) {
          cumulative_times_.add(name, it->second);
        }
      }
    }
    if (!result_queue_.push(std::move(result))) break;
  }
  result_queue_.close();
}

}  // namespace sarbp::pipeline
