#include "pipeline/pipeline.h"

#include <utility>

#include "common/check.h"

namespace sarbp::pipeline {
namespace {

constexpr const char* kStageNames[] = {"backprojection", "accumulate",
                                       "registration", "ccd", "cfar"};

double elapsed_s(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - since)
      .count();
}

}  // namespace

SurveillancePipeline::SurveillancePipeline(const geometry::ImageGrid& grid,
                                           PipelineConfig config)
    : grid_(grid),
      config_(std::move(config)),
      metrics_(config_.metrics != nullptr ? config_.metrics
                                          : &obs::registry()),
      backprojector_(grid_, config_.backprojection),
      registrar_(config_.registration),
      pulse_queue_(config_.queue_depth, "pipeline.pulse", metrics_),
      image_queue_(config_.queue_depth, "pipeline.image", metrics_),
      result_queue_(config_.queue_depth + 2, "pipeline.result", metrics_),
      started_(std::chrono::steady_clock::now()) {
  bp_thread_ = std::thread([this] { backprojection_stage(); });
  post_thread_ = std::thread([this] { post_processing_stage(); });
}

// Shutdown protocol (DESIGN.md): close queues strictly downstream-first
// from the consumer's point of view — closing result_queue_ releases the
// post stage even when the caller never collected its results; the post
// stage then closes image_queue_ on its way out, releasing a
// backprojection stage blocked mid-push; close_input() has already
// released a producer blocked on pulse_queue_. Only then are the stage
// threads joined.
SurveillancePipeline::~SurveillancePipeline() {
  close_input();
  // Drain anything the consumer never collected so the stages can exit.
  result_queue_.close();
  if (bp_thread_.joinable()) bp_thread_.join();
  if (post_thread_.joinable()) post_thread_.join();
}

bool SurveillancePipeline::push_pulses(sim::PhaseHistory batch) {
  return pulse_queue_.push(std::move(batch));
}

std::optional<FrameResult> SurveillancePipeline::pop_result() {
  return result_queue_.pop();
}

void SurveillancePipeline::close_input() { pulse_queue_.close(); }

SectionTimes SurveillancePipeline::cumulative_stage_times() const {
  SectionTimes totals;
  for (const char* name : kStageNames) {
    const double secs =
        metrics_->histogram(std::string("pipeline.stage.") + name).sum();
    if (secs > 0.0) totals.add(name, secs);
  }
  return totals;
}

void SurveillancePipeline::record_stage(const char* name, double seconds) {
  metrics_->histogram(std::string("pipeline.stage.") + name).record(seconds);
}

void SurveillancePipeline::backprojection_stage() {
  bp::IncrementalAccumulator accumulator(grid_.width(), grid_.height(),
                                         config_.accumulation_factor);
  Index frame = 0;
  while (auto batch = pulse_queue_.pop()) {
    FormedImage formed;
    formed.frame = frame++;
    formed.ingested = std::chrono::steady_clock::now();
    Timer bp_timer;
    Grid2D<CFloat> batch_image(grid_.width(), grid_.height());
    backprojector_.add_pulses(*batch, batch_image);
    formed.stage_seconds["backprojection"] = bp_timer.seconds();
    Timer acc_timer;
    accumulator.push(std::move(batch_image));
    formed.image = accumulator.current();
    formed.stage_seconds["accumulate"] = acc_timer.seconds();

    for (const auto& [name, secs] : formed.stage_seconds) {
      record_stage(name.c_str(), secs);
    }
    if (!image_queue_.push(std::move(formed))) break;
  }
  image_queue_.close();
}

void SurveillancePipeline::post_processing_stage() {
  obs::Histogram& latency = metrics_->histogram("pipeline.frame.latency_s");
  obs::Histogram& completed_at =
      metrics_->histogram("pipeline.frame.completed_at_s");
  obs::Counter& frames_done = metrics_->counter("pipeline.frames");
  std::optional<Grid2D<CFloat>> reference;
  while (auto formed = image_queue_.pop()) {
    FrameResult result;
    result.frame = formed->frame;
    result.stage_seconds = std::move(formed->stage_seconds);

    if (!reference.has_value()) {
      reference = formed->image;
      result.is_reference = true;
      result.image = std::move(formed->image);
    } else {
      Timer reg_timer;
      result.image =
          registrar_.register_image(formed->image, *reference, &result.alignment);
      result.stage_seconds["registration"] = reg_timer.seconds();

      Timer ccd_timer;
      result.correlation = ccd(result.image, *reference, config_.ccd);
      result.stage_seconds["ccd"] = ccd_timer.seconds();

      Timer cfar_timer;
      result.cfar = cfar_detect(result.correlation, config_.cfar);
      result.stage_seconds["cfar"] = cfar_timer.seconds();
    }

    for (const auto& name : {"registration", "ccd", "cfar"}) {
      const auto it = result.stage_seconds.find(name);
      if (it != result.stage_seconds.end()) record_stage(name, it->second);
    }
    latency.record(elapsed_s(formed->ingested));
    completed_at.record(elapsed_s(started_));
    frames_done.add();
    if (!result_queue_.push(std::move(result))) {
      // The consumer stopped collecting (result_queue_ closed, e.g. by the
      // destructor). Close our input too: a backprojection stage blocked
      // pushing into a full image_queue_ must wake and exit, or the
      // destructor's join would deadlock.
      image_queue_.close();
      break;
    }
  }
  result_queue_.close();
}

}  // namespace sarbp::pipeline
