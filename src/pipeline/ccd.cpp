#include "pipeline/ccd.h"

#include <omp.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"

namespace sarbp::pipeline {
namespace {

void validate(const Grid2D<CFloat>& current, const Grid2D<CFloat>& reference,
              const CcdParams& params) {
  ensure(current.same_shape(reference), "ccd: image shapes must match");
  ensure(params.window >= 1 && params.window % 2 == 1,
         "ccd: window must be odd and positive");
}

float coherence(double fg_re, double fg_im, double ff, double gg) {
  const double denom = std::sqrt(ff * gg);
  if (denom <= 0.0) return 0.0;
  const double mag = std::sqrt(fg_re * fg_re + fg_im * fg_im);
  return static_cast<float>(std::min(1.0, mag / denom));
}

}  // namespace

Grid2D<float> ccd_direct(const Grid2D<CFloat>& current,
                         const Grid2D<CFloat>& reference,
                         const CcdParams& params) {
  validate(current, reference, params);
  const Index w = current.width();
  const Index h = current.height();
  const Index half = params.window / 2;
  Grid2D<float> out(w, h);
#pragma omp parallel for schedule(static)
  for (Index y = 0; y < h; ++y) {
    for (Index x = 0; x < w; ++x) {
      double fg_re = 0.0, fg_im = 0.0, ff = 0.0, gg = 0.0;
      for (Index wy = std::max<Index>(0, y - half);
           wy <= std::min<Index>(h - 1, y + half); ++wy) {
        for (Index wx = std::max<Index>(0, x - half);
             wx <= std::min<Index>(w - 1, x + half); ++wx) {
          const CFloat f = current.at(wx, wy);
          const CFloat g = reference.at(wx, wy);
          // f * conj(g)
          fg_re += static_cast<double>(f.real()) * g.real() +
                   static_cast<double>(f.imag()) * g.imag();
          fg_im += static_cast<double>(f.imag()) * g.real() -
                   static_cast<double>(f.real()) * g.imag();
          ff += static_cast<double>(f.real()) * f.real() +
                static_cast<double>(f.imag()) * f.imag();
          gg += static_cast<double>(g.real()) * g.real() +
                static_cast<double>(g.imag()) * g.imag();
        }
      }
      out.at(x, y) = coherence(fg_re, fg_im, ff, gg);
    }
  }
  return out;
}

Grid2D<float> ccd(const Grid2D<CFloat>& current,
                  const Grid2D<CFloat>& reference, const CcdParams& params) {
  validate(current, reference, params);
  const Index w = current.width();
  const Index h = current.height();
  const Index half = params.window / 2;
  Grid2D<float> out(w, h);

  // Column sums over the vertical window [y-half, y+half] for every x,
  // maintained incrementally as the output row advances (add the entering
  // row, drop the leaving one) — the paper's drop-Ncor/obtain-Ncor update,
  // organized per column.
  std::vector<double> col_fg_re(static_cast<std::size_t>(w), 0.0);
  std::vector<double> col_fg_im(static_cast<std::size_t>(w), 0.0);
  std::vector<double> col_ff(static_cast<std::size_t>(w), 0.0);
  std::vector<double> col_gg(static_cast<std::size_t>(w), 0.0);

  auto add_row = [&](Index y, double sign) {
    for (Index x = 0; x < w; ++x) {
      const CFloat f = current.at(x, y);
      const CFloat g = reference.at(x, y);
      const auto xi = static_cast<std::size_t>(x);
      col_fg_re[xi] += sign * (static_cast<double>(f.real()) * g.real() +
                               static_cast<double>(f.imag()) * g.imag());
      col_fg_im[xi] += sign * (static_cast<double>(f.imag()) * g.real() -
                               static_cast<double>(f.real()) * g.imag());
      col_ff[xi] += sign * (static_cast<double>(f.real()) * f.real() +
                            static_cast<double>(f.imag()) * f.imag());
      col_gg[xi] += sign * (static_cast<double>(g.real()) * g.real() +
                            static_cast<double>(g.imag()) * g.imag());
    }
  };

  // Prime the column sums for output row 0: rows [0, half].
  for (Index y = 0; y <= std::min<Index>(half, h - 1); ++y) add_row(y, +1.0);

  // Horizontal prefix sums reused per output row.
  std::vector<double> pre_fg_re(static_cast<std::size_t>(w) + 1, 0.0);
  std::vector<double> pre_fg_im(static_cast<std::size_t>(w) + 1, 0.0);
  std::vector<double> pre_ff(static_cast<std::size_t>(w) + 1, 0.0);
  std::vector<double> pre_gg(static_cast<std::size_t>(w) + 1, 0.0);

  for (Index y = 0; y < h; ++y) {
    for (Index x = 0; x < w; ++x) {
      const auto xi = static_cast<std::size_t>(x);
      pre_fg_re[xi + 1] = pre_fg_re[xi] + col_fg_re[xi];
      pre_fg_im[xi + 1] = pre_fg_im[xi] + col_fg_im[xi];
      pre_ff[xi + 1] = pre_ff[xi] + col_ff[xi];
      pre_gg[xi + 1] = pre_gg[xi] + col_gg[xi];
    }
    for (Index x = 0; x < w; ++x) {
      const auto lo = static_cast<std::size_t>(std::max<Index>(0, x - half));
      const auto hi = static_cast<std::size_t>(std::min<Index>(w - 1, x + half) + 1);
      out.at(x, y) = coherence(pre_fg_re[hi] - pre_fg_re[lo],
                               pre_fg_im[hi] - pre_fg_im[lo],
                               pre_ff[hi] - pre_ff[lo],
                               pre_gg[hi] - pre_gg[lo]);
    }
    // Slide the vertical window down one row.
    const Index leaving = y - half;
    const Index entering = y + half + 1;
    if (leaving >= 0) add_row(leaving, -1.0);
    if (entering < h) add_row(entering, +1.0);
  }
  return out;
}

}  // namespace sarbp::pipeline
