// 2D affine transform with least-squares estimation — the registration
// stage's "transformation that matches the current image closely to the
// reference image ... solving linear systems via normal equations with six
// unknowns" (paper §2).
#pragma once

#include <span>

#include "common/types.h"

namespace sarbp::pipeline {

/// x' = axx*x + axy*y + tx;  y' = ayx*x + ayy*y + ty.
struct AffineTransform {
  double axx = 1.0, axy = 0.0, tx = 0.0;
  double ayx = 0.0, ayy = 1.0, ty = 0.0;

  [[nodiscard]] static AffineTransform identity() { return {}; }

  void apply(double x, double y, double& out_x, double& out_y) const {
    out_x = axx * x + axy * y + tx;
    out_y = ayx * x + ayy * y + ty;
  }

  /// Pure-translation constructor.
  [[nodiscard]] static AffineTransform translation(double dx, double dy) {
    AffineTransform t;
    t.tx = dx;
    t.ty = dy;
    return t;
  }
};

/// One matched control point: position in the current image and the
/// displacement that aligns it with the reference.
struct ControlPointMatch {
  double x = 0.0;
  double y = 0.0;
  double dx = 0.0;
  double dy = 0.0;
  double confidence = 1.0;  ///< correlation-peak quality in [0, 1]
};

/// Weighted least-squares affine fit via the 6-unknown normal equations
/// (two independent 3x3 systems). Requires >= 3 non-collinear matches;
/// throws PreconditionError otherwise.
AffineTransform fit_affine(std::span<const ControlPointMatch> matches);

}  // namespace sarbp::pipeline
