// Registration stage (paper §2): "corrects for distortions or
// misalignments in the reconstructed image by aligning it with a reference
// image. This stage involves (1) finding a transformation that matches the
// current image closely to the reference image using Nc Sc x Sc 2D FFTs
// followed by solving linear systems via normal equations with six
// unknowns, and (2) applying the transformation using bilinear
// interpolation for resampling."
#pragma once

#include <vector>

#include "common/grid2d.h"
#include "common/types.h"
#include "pipeline/affine.h"

namespace sarbp::pipeline {

struct RegistrationParams {
  /// Control points per image axis (the paper's Nc is the total count).
  Index control_points_x = 4;
  Index control_points_y = 4;
  /// Registration neighbourhood (patch) edge: the paper's Sc (31 in Table 1).
  Index patch = 31;
  /// Matches whose correlation-peak confidence falls below this are
  /// excluded from the affine fit.
  double min_confidence = 0.1;

  [[nodiscard]] Index total_control_points() const {
    return control_points_x * control_points_y;
  }
};

class Registrar {
 public:
  explicit Registrar(RegistrationParams params);

  /// Matches control-point patches of `current` against `reference` by
  /// FFT cross-correlation of magnitude patches (one Sc x Sc 2D FFT pair
  /// per control point) with sub-pixel parabolic peak refinement.
  [[nodiscard]] std::vector<ControlPointMatch> match_control_points(
      const Grid2D<CFloat>& current, const Grid2D<CFloat>& reference) const;

  /// Estimates the affine alignment from matches (normal equations).
  [[nodiscard]] AffineTransform estimate(
      std::span<const ControlPointMatch> matches) const;

  /// Bilinear-resamples `current` under `transform` so it aligns with the
  /// reference: out(x, y) = current(transform(x, y)).
  [[nodiscard]] Grid2D<CFloat> resample(const Grid2D<CFloat>& current,
                                        const AffineTransform& transform) const;

  /// Full stage: match, fit, resample. Returns the registered image;
  /// optionally reports the fitted transform.
  [[nodiscard]] Grid2D<CFloat> register_image(
      const Grid2D<CFloat>& current, const Grid2D<CFloat>& reference,
      AffineTransform* fitted = nullptr) const;

  [[nodiscard]] const RegistrationParams& params() const { return params_; }

 private:
  RegistrationParams params_;
};

}  // namespace sarbp::pipeline
