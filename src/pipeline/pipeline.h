// The persistent-surveillance pipeline (paper Fig. 2 / Fig. 4):
//
//   pulses -> backprojection (+ incremental accumulation) -> registration
//          -> CCD -> CFAR -> detections,
//
// run as a software pipeline: stages execute on their own threads and are
// joined by bounded concurrent queues (§4.1), so pulse ingest for image
// t+1 overlaps with image formation for image t and post-processing for
// image t-1. The first completed image becomes the reference; every later
// frame is registered against it before change detection.
#pragma once

#include <chrono>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>

#include "backprojection/accumulator.h"
#include "backprojection/backprojector.h"
#include "common/grid2d.h"
#include "common/queue.h"
#include "common/timer.h"
#include "geometry/grid.h"
#include "obs/metrics.h"
#include "pipeline/cfar.h"
#include "pipeline/ccd.h"
#include "pipeline/registration.h"
#include "sim/phase_history.h"

namespace sarbp::pipeline {

struct PipelineConfig {
  bp::BackprojectOptions backprojection;
  /// Accumulation factor k (paper §2): images combine the latest batch
  /// with up to k earlier batch results.
  int accumulation_factor = 2;
  RegistrationParams registration;
  CcdParams ccd;
  CfarParams cfar;
  /// Bounded-queue depth between stages (2 = classic double buffering).
  std::size_t queue_depth = 2;
  /// Metrics sink: stage spans ("pipeline.stage.*"), per-frame latency
  /// ("pipeline.frame.latency_s"), completion-time histogram
  /// ("pipeline.frame.completed_at_s") and queue gauges are recorded here.
  /// Null selects the process-global obs::registry().
  obs::Registry* metrics = nullptr;
};

struct FrameResult {
  Index frame = 0;
  bool is_reference = false;        ///< first frame: defines the reference
  Grid2D<CFloat> image;             ///< registered (aligned) image
  AffineTransform alignment;        ///< fitted current->reference transform
  Grid2D<float> correlation;        ///< CCD map (empty on reference frame)
  CfarResult cfar;                  ///< detections (empty on reference frame)
  std::map<std::string, double> stage_seconds;
};

class SurveillancePipeline {
 public:
  SurveillancePipeline(const geometry::ImageGrid& grid, PipelineConfig config);
  ~SurveillancePipeline();

  SurveillancePipeline(const SurveillancePipeline&) = delete;
  SurveillancePipeline& operator=(const SurveillancePipeline&) = delete;

  /// Feeds one pulse batch (one "second" of new pulses). Blocks on
  /// backpressure. Returns false after close_input().
  bool push_pulses(sim::PhaseHistory batch);

  /// Retrieves the next completed frame; blocks; nullopt after the input
  /// was closed and everything in flight has drained.
  std::optional<FrameResult> pop_result();

  /// Signals end of the pulse stream.
  void close_input();

  /// Wall-clock totals per stage, accumulated across all frames — read
  /// back from the "pipeline.stage.*" histograms of the configured metrics
  /// registry (so a shared/global registry accumulates across pipeline
  /// instances). Safe to read after the pipeline has drained.
  [[nodiscard]] SectionTimes cumulative_stage_times() const;

  /// The registry this pipeline records into.
  [[nodiscard]] obs::Registry& metrics() const { return *metrics_; }

 private:
  struct FormedImage {
    Index frame;
    Grid2D<CFloat> image;
    std::map<std::string, double> stage_seconds;
    /// When the backprojection stage dequeued the pulse batch — the start
    /// of the frame's in-pipeline latency measurement.
    std::chrono::steady_clock::time_point ingested;
  };

  void backprojection_stage();
  void post_processing_stage();
  void record_stage(const char* name, double seconds);

  geometry::ImageGrid grid_;
  PipelineConfig config_;
  obs::Registry* metrics_;
  bp::Backprojector backprojector_;
  Registrar registrar_;

  BoundedQueue<sim::PhaseHistory> pulse_queue_;
  BoundedQueue<FormedImage> image_queue_;
  BoundedQueue<FrameResult> result_queue_;

  std::chrono::steady_clock::time_point started_;

  std::thread bp_thread_;
  std::thread post_thread_;
};

}  // namespace sarbp::pipeline
