#include "pipeline/registration.h"

#include <omp.h>

#include <algorithm>
#include <cmath>
#include <complex>

#include "common/check.h"
#include "signal/fft2d.h"
#include "signal/interp.h"

namespace sarbp::pipeline {
namespace {

/// Zero-mean magnitude patch of `img`, centred at (cx, cy), into the
/// top-left corner of a zero-padded P x P grid.
void extract_patch(const Grid2D<CFloat>& img, Index cx, Index cy, Index sc,
                   Grid2D<CDouble>& out) {
  out.fill(CDouble{});
  const Index half = sc / 2;
  double mean = 0.0;
  for (Index dy = 0; dy < sc; ++dy) {
    for (Index dx = 0; dx < sc; ++dx) {
      const Index x = std::clamp<Index>(cx - half + dx, 0, img.width() - 1);
      const Index y = std::clamp<Index>(cy - half + dy, 0, img.height() - 1);
      const double mag = std::abs(
          std::complex<double>(img.at(x, y).real(), img.at(x, y).imag()));
      out.at(dx, dy) = CDouble{mag, 0.0};
      mean += mag;
    }
  }
  mean /= static_cast<double>(sc * sc);
  for (Index dy = 0; dy < sc; ++dy) {
    for (Index dx = 0; dx < sc; ++dx) {
      out.at(dx, dy) -= CDouble{mean, 0.0};
    }
  }
}

/// Parabolic sub-sample refinement of a discrete peak: offset in (-0.5, 0.5).
double parabolic_offset(double left, double centre, double right) {
  const double denom = left - 2.0 * centre + right;
  if (std::abs(denom) < 1e-30) return 0.0;
  const double offset = 0.5 * (left - right) / denom;
  return std::clamp(offset, -0.5, 0.5);
}

}  // namespace

Registrar::Registrar(RegistrationParams params) : params_(params) {
  ensure(params_.patch >= 5, "Registrar: patch must be at least 5 pixels");
  ensure(params_.control_points_x >= 1 && params_.control_points_y >= 1,
         "Registrar: need at least one control point per axis");
}

std::vector<ControlPointMatch> Registrar::match_control_points(
    const Grid2D<CFloat>& current, const Grid2D<CFloat>& reference) const {
  ensure(current.same_shape(reference),
         "Registrar: image shapes must match");
  const Index sc = params_.patch;
  ensure(current.width() > 2 * sc && current.height() > 2 * sc,
         "Registrar: image too small for the patch size");
  // Pad to a power of two >= 2*Sc: linear (non-circular) correlation range
  // of +/- Sc/2 with headroom, and the fast FFT path.
  const auto pad = static_cast<Index>(
      signal::Fft<double>::next_power_of_two(static_cast<std::size_t>(2 * sc)));

  const Index ncx = params_.control_points_x;
  const Index ncy = params_.control_points_y;
  std::vector<ControlPointMatch> matches(
      static_cast<std::size_t>(ncx * ncy));

  const signal::Fft2D<double> fft(pad, pad);
#pragma omp parallel for collapse(2) schedule(dynamic)
  for (Index gy = 0; gy < ncy; ++gy) {
    for (Index gx = 0; gx < ncx; ++gx) {
      // Control points spread over the interior (a patch-wide margin).
      const Index cx =
          sc + (current.width() - 2 * sc) * (2 * gx + 1) / (2 * ncx);
      const Index cy =
          sc + (current.height() - 2 * sc) * (2 * gy + 1) / (2 * ncy);

      Grid2D<CDouble> cur_patch(pad, pad);
      Grid2D<CDouble> ref_patch(pad, pad);
      extract_patch(current, cx, cy, sc, cur_patch);
      extract_patch(reference, cx, cy, sc, ref_patch);

      double cur_energy = 0.0;
      double ref_energy = 0.0;
      for (Index i = 0; i < cur_patch.size(); ++i) {
        cur_energy += std::norm(cur_patch.flat()[static_cast<std::size_t>(i)]);
        ref_energy += std::norm(ref_patch.flat()[static_cast<std::size_t>(i)]);
      }

      fft.forward(cur_patch);
      fft.forward(ref_patch);
      for (Index i = 0; i < cur_patch.size(); ++i) {
        cur_patch.flat()[static_cast<std::size_t>(i)] *=
            std::conj(ref_patch.flat()[static_cast<std::size_t>(i)]);
      }
      fft.inverse(cur_patch);

      // Peak search over the correlation surface (real part; the inputs
      // are real magnitudes).
      Index px = 0, py = 0;
      double peak = -1e300;
      for (Index y = 0; y < pad; ++y) {
        for (Index x = 0; x < pad; ++x) {
          const double v = cur_patch.at(x, y).real();
          if (v > peak) {
            peak = v;
            px = x;
            py = y;
          }
        }
      }
      auto wrap = [&](Index v) {
        return v >= pad / 2 ? static_cast<double>(v - pad)
                            : static_cast<double>(v);
      };
      auto at_wrapped = [&](Index x, Index y) {
        return cur_patch.at((x % pad + pad) % pad, (y % pad + pad) % pad).real();
      };
      const double sub_x =
          parabolic_offset(at_wrapped(px - 1, py), peak, at_wrapped(px + 1, py));
      const double sub_y =
          parabolic_offset(at_wrapped(px, py - 1), peak, at_wrapped(px, py + 1));

      ControlPointMatch m;
      m.x = static_cast<double>(cx);
      m.y = static_cast<double>(cy);
      // Correlation peak at shift s means current(x) ~ reference(x - s):
      // the current image content sits at +s; sampling current at x + s
      // aligns it with the reference.
      m.dx = wrap(px) + sub_x;
      m.dy = wrap(py) + sub_y;
      const double denom = std::sqrt(cur_energy * ref_energy);
      m.confidence = denom > 0.0 ? std::clamp(peak / denom, 0.0, 1.0) : 0.0;
      matches[static_cast<std::size_t>(gy * ncx + gx)] = m;
    }
  }
  return matches;
}

AffineTransform Registrar::estimate(
    std::span<const ControlPointMatch> matches) const {
  std::vector<ControlPointMatch> good;
  good.reserve(matches.size());
  for (const auto& m : matches) {
    if (m.confidence >= params_.min_confidence) good.push_back(m);
  }
  ensure(good.size() >= 3,
         "Registrar::estimate: fewer than 3 confident control points");
  return fit_affine(good);
}

Grid2D<CFloat> Registrar::resample(const Grid2D<CFloat>& current,
                                   const AffineTransform& transform) const {
  Grid2D<CFloat> out(current.width(), current.height());
#pragma omp parallel for schedule(static)
  for (Index y = 0; y < out.height(); ++y) {
    for (Index x = 0; x < out.width(); ++x) {
      double sx = 0.0, sy = 0.0;
      transform.apply(static_cast<double>(x), static_cast<double>(y), sx, sy);
      out.at(x, y) = signal::bilinear(current, sx, sy);
    }
  }
  return out;
}

Grid2D<CFloat> Registrar::register_image(const Grid2D<CFloat>& current,
                                         const Grid2D<CFloat>& reference,
                                         AffineTransform* fitted) const {
  const auto matches = match_control_points(current, reference);
  const AffineTransform t = estimate(matches);
  if (fitted != nullptr) *fitted = t;
  return resample(current, t);
}

}  // namespace sarbp::pipeline
