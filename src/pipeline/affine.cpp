#include "pipeline/affine.h"

#include <array>
#include <cmath>

#include "common/check.h"

namespace sarbp::pipeline {
namespace {

/// Gaussian elimination with partial pivoting for the 3x3 normal system.
std::array<double, 3> solve3(std::array<std::array<double, 3>, 3> a,
                             std::array<double, 3> b) {
  for (int col = 0; col < 3; ++col) {
    int pivot = col;
    for (int row = col + 1; row < 3; ++row) {
      if (std::abs(a[row][col]) > std::abs(a[pivot][col])) pivot = row;
    }
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);
    ensure(std::abs(a[col][col]) > 1e-12,
           "fit_affine: degenerate control-point configuration");
    for (int row = col + 1; row < 3; ++row) {
      const double f = a[row][col] / a[col][col];
      for (int k = col; k < 3; ++k) a[row][k] -= f * a[col][k];
      b[row] -= f * b[col];
    }
  }
  std::array<double, 3> x{};
  for (int row = 2; row >= 0; --row) {
    double acc = b[row];
    for (int k = row + 1; k < 3; ++k) acc -= a[row][k] * x[k];
    x[row] = acc / a[row][row];
  }
  return x;
}

}  // namespace

AffineTransform fit_affine(std::span<const ControlPointMatch> matches) {
  ensure(matches.size() >= 3, "fit_affine: need at least 3 control points");
  // Normal matrix of the design [x y 1] with per-match weights; shared by
  // both the x'- and y'-row systems.
  std::array<std::array<double, 3>, 3> n{};
  std::array<double, 3> bx{};
  std::array<double, 3> by{};
  for (const auto& m : matches) {
    const double w = m.confidence;
    const double row[3] = {m.x, m.y, 1.0};
    const double target_x = m.x + m.dx;
    const double target_y = m.y + m.dy;
    for (int i = 0; i < 3; ++i) {
      for (int j = 0; j < 3; ++j) n[i][j] += w * row[i] * row[j];
      bx[static_cast<std::size_t>(i)] += w * row[i] * target_x;
      by[static_cast<std::size_t>(i)] += w * row[i] * target_y;
    }
  }
  const auto solx = solve3(n, bx);
  const auto soly = solve3(n, by);
  AffineTransform t;
  t.axx = solx[0];
  t.axy = solx[1];
  t.tx = solx[2];
  t.ayx = soly[0];
  t.ayy = soly[1];
  t.ty = soly[2];
  return t;
}

}  // namespace sarbp::pipeline
