// Coherent change detection (paper §2): "computes correlations between
// Ncor x Ncor-size windows centered at the same position in the current and
// reference images. Its straightforward implementation requires
// Theta(Ncor^2 Ix Iy) operations, which can be reduced to
// Theta(Ncor Ix Iy) by incrementally computing correlation values."
//
// The correlation coefficient at pixel (x, y) is
//   gamma = |sum f conj(g)| / sqrt(sum |f|^2 * sum |g|^2)
// over the window (paper footnote 7: maintain sum x, sum y, sum x conj(y),
// sum |x|^2, sum |y|^2 incrementally).
//
// Both implementations are provided: the direct quadratic one (ground truth
// for tests and the complexity-ablation bench) and the incremental
// sliding-window one the paper describes.
#pragma once

#include "common/grid2d.h"
#include "common/types.h"

namespace sarbp::pipeline {

struct CcdParams {
  /// Window edge: the paper's Ncor (25 in Table 1). Must be odd.
  Index window = 25;
};

/// Direct evaluation: Theta(Ncor^2) work per pixel.
Grid2D<float> ccd_direct(const Grid2D<CFloat>& current,
                         const Grid2D<CFloat>& reference,
                         const CcdParams& params);

/// Incremental evaluation (paper footnote 7): per output pixel the window
/// sums are updated by dropping/adding one window column — Theta(Ncor)
/// work per pixel. Column sums themselves are maintained incrementally
/// down the image, so the total is Theta(Ix Iy) amortized.
Grid2D<float> ccd(const Grid2D<CFloat>& current,
                  const Grid2D<CFloat>& reference, const CcdParams& params);

}  // namespace sarbp::pipeline
