#include "pipeline/cfar.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace sarbp::pipeline {

CfarResult cfar_detect(const Grid2D<float>& correlation,
                       const CfarParams& params) {
  ensure(params.window % 2 == 1 && params.window >= 3,
         "cfar: window must be odd and >= 3");
  ensure(params.guard % 2 == 1 && params.guard >= 1 &&
             params.guard < params.window,
         "cfar: guard must be odd and smaller than the window");
  const Index w = correlation.width();
  const Index h = correlation.height();
  const Index half = params.window / 2;
  const Index ghalf = params.guard / 2;
  const Index margin =
      params.border_margin >= 0 ? params.border_margin : half;

  CfarResult result;
  for (Index y = margin; y < h - margin; ++y) {
    for (Index x = margin; x < w - margin; ++x) {
      const float gamma = correlation.at(x, y);
      if (gamma >= params.candidate_correlation) continue;
      ++result.candidates;

      // Background: window ring outside the guard region, clipped to the
      // image. This inner loop only runs for candidates — Theta(Ncfar Nd).
      double background = 0.0;
      Index count = 0;
      for (Index wy = std::max<Index>(0, y - half);
           wy <= std::min<Index>(h - 1, y + half); ++wy) {
        for (Index wx = std::max<Index>(0, x - half);
             wx <= std::min<Index>(w - 1, x + half); ++wx) {
          if (std::abs(wx - x) <= ghalf && std::abs(wy - y) <= ghalf) continue;
          background += 1.0 - static_cast<double>(correlation.at(wx, wy));
          ++count;
        }
      }
      if (count == 0) continue;
      const double mean_background = std::max(1e-6, background / count);
      const double statistic = (1.0 - gamma) / mean_background;
      if (statistic > params.scale) {
        Detection d;
        d.x = x;
        d.y = y;
        d.correlation = gamma;
        d.statistic = static_cast<float>(statistic);
        result.detections.push_back(d);
      }
    }
  }
  return result;
}

}  // namespace sarbp::pipeline
