#include "exec/formation_tasks.h"

#include <memory>
#include <utility>
#include <vector>

#include "backprojection/partition.h"
#include "backprojection/soa_tile.h"
#include "common/check.h"

namespace sarbp::exec {

GroupPtr make_backprojection_group(const sim::PhaseHistory& history,
                                   const geometry::ImageGrid& grid,
                                   const bp::BackprojectOptions& options,
                                   int parallelism, Grid2D<CFloat>& out,
                                   std::function<bool()> checkpoint) {
  ensure(parallelism >= 1, "make_backprojection_group: parallelism >= 1");
  ensure(out.width() == grid.width() && out.height() == grid.height(),
         "make_backprojection_group: image shape mismatch");

  const bp::CubeShape shape{history.num_pulses(), grid.width(), grid.height()};
  const bp::PartitionChoice choice =
      bp::choose_partition(shape, parallelism, options.min_region_edge);
  auto parts = std::make_shared<std::vector<bp::CubePart>>(
      bp::partition_cube(shape, choice));
  // One private tile per part (§4.3); index pp*XY + r, pulse-slice major.
  auto tiles = std::make_shared<std::vector<bp::SoaTile>>(parts->size());

  std::vector<TaskGroup::Task> tasks;
  tasks.reserve(parts->size());
  for (std::size_t i = 0; i < parts->size(); ++i) {
    tasks.push_back([&history, &grid, &options, parts, tiles, i](int,
                                                                 TaskGroup&) {
      const bp::CubePart& part = (*parts)[i];
      bp::SoaTile& tile = (*tiles)[i];
      tile.reset(part.region.width, part.region.height);
      bp::run_cube_part(history, grid, options, part, tile);
    });
  }

  const std::size_t slices = static_cast<std::size_t>(choice.parts_pulse);
  const std::size_t regions =
      static_cast<std::size_t>(choice.parts_x * choice.parts_y);
  auto on_complete = [parts, tiles, slices, regions, &out](TaskGroup& group) {
    if (group.aborted()) return;
    // Deterministic stride-doubling tree over the pulse slices of each
    // region, then one accumulate into the shared image per region.
    for (std::size_t r = 0; r < regions; ++r) {
      for (std::size_t stride = 1; stride < slices; stride *= 2) {
        for (std::size_t s = 0; s + stride < slices; s += 2 * stride) {
          (*tiles)[s * regions + r].accumulate_tile(
              (*tiles)[(s + stride) * regions + r]);
        }
      }
      (*tiles)[r].accumulate_into(out, (*parts)[r].region);
    }
  };

  return std::make_shared<TaskGroup>(std::move(tasks), std::move(checkpoint),
                                     std::move(on_complete), "backprojection");
}

}  // namespace sarbp::exec
