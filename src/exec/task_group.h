// TaskGroup: one job's worth of tile tasks plus the completion machinery.
//
// A group is the executor's unit of injection — the tasks of one
// image-formation job, decomposed over the (pulse x y x x) cube. Tasks are
// independent closures; the worker that finishes the last one runs the
// group's `on_complete` continuation (the per-job reduction and result
// publication), so the worker that *claimed* the job never has to wait on
// it and can move straight to the next admission token.
//
// Cancellation contract: `checkpoint` (when set) is polled before every
// task, possibly concurrently from several workers — it must be
// thread-safe. The first `false` flips the group's aborted flag; remaining
// tasks are skipped (they still count toward completion so on_complete
// always runs exactly once). A task that throws likewise aborts the group
// and records the first error message.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/thread_annotations.h"
#include "exec/steal_deque.h"

namespace sarbp::exec {

/// Test seam: the schedule-exploring model checker (tests/model/) drives
/// the group's private completion machinery through this friend.
struct ModelAccess;

class TaskGroup {
 public:
  /// `worker` is the executing pool slot (for per-worker scratch schemes);
  /// `group` is the owning group, so a task that detects cancellation
  /// mid-way can abort() the rest of the job.
  using Task = std::function<void(int worker, TaskGroup& group)>;

  /// `tasks` must be non-empty. `checkpoint`/`on_complete` may be null.
  TaskGroup(std::vector<Task> tasks, std::function<bool()> checkpoint,
            std::function<void(TaskGroup&)> on_complete,
            std::string label = {})
      : tasks_(std::move(tasks)),
        checkpoint_(std::move(checkpoint)),
        on_complete_(std::move(on_complete)),
        label_(std::move(label)),
        remaining_(static_cast<std::uint32_t>(tasks_.size())),
        units_(tasks_.size()) {
    ensure(!tasks_.empty(), "TaskGroup: needs at least one task");
    for (std::uint32_t i = 0; i < units_.size(); ++i) {
      units_[i] = TaskUnit{this, i};
    }
  }

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  [[nodiscard]] std::size_t size() const { return tasks_.size(); }
  [[nodiscard]] const std::string& label() const { return label_; }
  [[nodiscard]] std::vector<TaskUnit>& units() { return units_; }

  [[nodiscard]] bool aborted() const {
    // order: acquire — pairs with abort()'s release so a worker that
    // observes the flag also observes everything the aborting thread wrote
    // before it (e.g. the RunCtx outcome the service checkpoint recorded).
    return aborted_.load(std::memory_order_acquire);
  }
  void abort() {
    // order: release — publishes the aborter's preceding writes to workers
    // that observe the flag with acquire (see aborted()).
    aborted_.store(true, std::memory_order_release);
  }

  /// First task-thrown error message; empty for checkpoint aborts.
  [[nodiscard]] std::string error() const SARBP_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return error_;
  }

  [[nodiscard]] bool done() const SARBP_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return done_;
  }

  /// Blocks until on_complete has run (executor-side callers; the service
  /// never waits — its continuation resolves the JobHandle).
  void wait() SARBP_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    while (!done_) cv_.wait(lock);
  }

  template <class Rep, class Period>
  bool wait_for(std::chrono::duration<Rep, Period> timeout)
      SARBP_EXCLUDES(mutex_) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    MutexLock lock(mutex_);
    while (!done_) {
      if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
        return done_;
      }
    }
    return true;
  }

  // --- per-group scheduling stats (filled by the executor) ---------------
  [[nodiscard]] std::uint64_t tasks_stolen() const {
    // order: relaxed — statistics counter; no ordering with other state.
    return stolen_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double busy_seconds() const {
    // order: relaxed — statistics; readers tolerate slightly-stale sums.
    return static_cast<double>(busy_ns_.load(std::memory_order_relaxed)) * 1e-9;
  }
  [[nodiscard]] double wall_seconds() const SARBP_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return wall_seconds_;
  }

 private:
  friend class TileExecutor;
  friend struct ModelAccess;

  void fail(const std::string& message) SARBP_EXCLUDES(mutex_) {
    {
      MutexLock lock(mutex_);
      if (error_.empty()) error_ = message;
    }
    abort();
  }

  std::vector<Task> tasks_;
  std::function<bool()> checkpoint_;
  std::function<void(TaskGroup&)> on_complete_;
  std::string label_;

  std::atomic<std::uint32_t> remaining_;
  std::atomic<bool> aborted_{false};
  std::atomic<std::uint64_t> stolen_{0};
  std::atomic<std::uint64_t> busy_ns_{0};

  std::vector<TaskUnit> units_;

  mutable Mutex mutex_{SARBP_LOCK_LEVEL("exec.group")};
  CondVar cv_;
  bool done_ SARBP_GUARDED_BY(mutex_) = false;
  double wall_seconds_ SARBP_GUARDED_BY(mutex_) = 0.0;
  std::string error_ SARBP_GUARDED_BY(mutex_);
  /// Injection timestamp. Written by the injecting worker, read by the
  /// (possibly different) worker that retires the last task; guarded so the
  /// hand-off is explicit rather than riding on the deque publish.
  std::chrono::steady_clock::time_point injected_ SARBP_GUARDED_BY(mutex_){};
};

using GroupPtr = std::shared_ptr<TaskGroup>;

}  // namespace sarbp::exec
