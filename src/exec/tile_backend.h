// Pluggable tile compute backends (paper §5.3 applied to the serving
// layer): every block-range task of a plan replay targets an abstract
// TileBackend — host scalar, host SIMD (runtime ISA dispatch), or the
// src/offload simulated coprocessor — and the BackendSet routes blocks
// across them with the dynamic split ratio, "adapted based on the
// execution time ratio observed with the first few images".
//
// Layering: exec must not depend on the service layer, so backends sweep
// through a PlanView — a non-owning projection of service::FormationPlan
// (blocks, per-pulse loop order, prebuilt block-major ASR tables). The
// service builds the view when it builds the task group.
//
// Identity contract: blocks cover disjoint pixel rectangles, and
// HostScalarBackend::sweep_block runs exactly the plan executor's scalar
// sweep — so any assignment of blocks to scalar backends (one or many)
// produces output byte-identical to the PR 3 single-executor path. The
// SIMD and offload backends change the within-pixel arithmetic (documented
// >70 dB parity) and are opt-in per request path.
//
// Instrumentation (per configured registry):
//   counters   backend.<name>.sweeps
//   gauges     backend.<name>.rate_bp_s, backend.<name>.split_permille
//   histograms backend.<name>.sweep_s (simulated seconds per task sweep)
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "asr/block_plan.h"
#include "asr/tables.h"
#include "backprojection/kernel.h"
#include "backprojection/soa_tile.h"
#include "common/thread_annotations.h"
#include "common/types.h"
#include "geometry/wavefront.h"
#include "obs/metrics.h"
#include "offload/device.h"
#include "sim/phase_history.h"

namespace sarbp::exec {

/// Non-owning view of a formation plan: everything a backend needs to
/// sweep one block. The owner (the service's plan-replay group) keeps the
/// plan alive for the group's lifetime.
struct PlanView {
  const asr::BlockSpec* blocks = nullptr;  ///< [num_blocks]
  Index num_blocks = 0;
  const geometry::LoopOrder* pulse_order = nullptr;  ///< [num_pulses]
  Index num_pulses = 0;
  /// Per-(block, pulse) tables, block-major: tables[b * num_pulses + p].
  const asr::BlockTables* tables = nullptr;
  Index region_x0 = 0;
  Index region_y0 = 0;

  [[nodiscard]] const asr::BlockTables& tables_for(Index block,
                                                   Index pulse) const {
    return tables[static_cast<std::size_t>(block) *
                      static_cast<std::size_t>(num_pulses) +
                  static_cast<std::size_t>(pulse)];
  }
};

/// One compute executor. sweep_block is called concurrently from several
/// workers (distinct blocks, disjoint tile rectangles) and must be
/// thread-compatible; the rate tracker is internally synchronized.
class TileBackend {
 public:
  TileBackend(std::string name, double rate_prior, double rate_smoothing,
              obs::Registry* metrics);
  virtual ~TileBackend() = default;

  TileBackend(const TileBackend&) = delete;
  TileBackend& operator=(const TileBackend&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }

  /// Sweeps pulses [pulse_begin, pulse_end) of one plan block into `tile`
  /// (shaped like the plan's region).
  virtual void sweep_block(const PlanView& plan,
                           const sim::PhaseHistory& history, Index block,
                           Index pulse_begin, Index pulse_end,
                           bp::SoaTile& tile) = 0;

  /// Simulated wall seconds for arithmetic that physically took
  /// `measured_seconds` on this host — identity for host backends, the
  /// device-rate rescale for the simulated coprocessor (DESIGN.md §2).
  [[nodiscard]] virtual double simulated_seconds(
      double measured_seconds) const {
    return measured_seconds;
  }

  /// Folds one task's sweep into the observed-rate EMA (§5.3).
  /// `measured_seconds` is host wall time; the backend applies its own
  /// simulated-time scaling before computing the rate.
  void record(double backprojections, double measured_seconds);

  /// Observed backprojections per simulated second; 0 until the first
  /// record().
  [[nodiscard]] double observed_rate() const;

  /// Capability prior in relative rate units (host scalar = 1); seeds the
  /// split until every backend in the set has been observed.
  [[nodiscard]] double rate_prior() const { return rate_prior_; }

  void set_split_gauge(double fraction);

 private:
  const std::string name_;
  const double rate_prior_;
  const double rate_smoothing_;
  mutable Mutex mutex_{SARBP_LOCK_LEVEL("exec.backend")};
  double rate_ SARBP_GUARDED_BY(mutex_) = 0.0;

  obs::Counter* sweeps_ = nullptr;
  obs::Gauge* rate_gauge_ = nullptr;
  obs::Gauge* split_gauge_ = nullptr;
  obs::Histogram* sweep_s_ = nullptr;
};

/// Declarative backend description (ServiceConfig-friendly).
struct BackendSpec {
  enum class Kind {
    kHostScalar,  ///< the plan executor's scalar sweep (byte-identical)
    kHostSimd,    ///< fused SIMD plan sweep, runtime ISA dispatch
    kOffloadSim,  ///< simulated coprocessor (scalar sweep, rescaled time)
  };
  Kind kind = Kind::kHostScalar;
  /// Metric/name override; defaults to "scalar" / "simd-<isa>" /
  /// "offload-<device>".
  std::string name;
  // --- kHostSimd knobs ---
  bp::SimdIsa isa = bp::SimdIsa::kAuto;
  bp::KernelVariant variant = bp::KernelVariant::kAuto;
  // --- kOffloadSim knobs ---
  offload::DeviceSpec device = offload::knights_corner();
  offload::DeviceSpec host_model = offload::xeon_e5_2670_dual();
};

[[nodiscard]] std::shared_ptr<TileBackend> make_backend(
    const BackendSpec& spec, double rate_smoothing, obs::Registry* metrics);

/// The routing set: owns the backends and computes the §5.3 dynamic split.
class BackendSet {
 public:
  /// `metrics` null selects the process-global registry.
  BackendSet(const std::vector<BackendSpec>& specs, double rate_smoothing,
             obs::Registry* metrics);

  [[nodiscard]] int size() const { return static_cast<int>(backends_.size()); }
  [[nodiscard]] TileBackend& backend(int i) { return *backends_[i]; }
  [[nodiscard]] const TileBackend& backend(int i) const {
    return *backends_[i];
  }

  /// Current work fractions, one per backend, summing to 1: proportional
  /// to observed rates once *every* backend has been observed, to the
  /// capability priors until then (observing only the fast backend must
  /// not starve the others before they ever run).
  [[nodiscard]] std::vector<double> split() const;

  /// Partitions `n` contiguous work items by the current split. Returns
  /// size()+1 monotone boundaries with front() == 0 and back() == n; also
  /// refreshes the backend.<name>.split_permille gauges.
  [[nodiscard]] std::vector<Index> partition(Index n) const;

 private:
  std::vector<std::shared_ptr<TileBackend>> backends_;
};

}  // namespace sarbp::exec
