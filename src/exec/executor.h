// Work-stealing tile executor: one pool of workers shared by every running
// image-formation job (paper §4 applied to the serving layer — decompose
// each job over the (pulse x y x x) cube and spread the pieces across all
// cores, instead of one job per core).
//
// Scheduling structure: every worker owns a Chase-Lev–style deque
// (steal_deque.h). New jobs arrive as TaskGroups, either pushed by an
// external thread through submit() (FIFO inbox) or pulled by an idle
// worker from the configured `source` callback (the service's
// priority/FIFO claim path). The claiming worker injects the whole group
// into its *own* deque and starts executing; workers whose deques drain
// steal tasks from running jobs. So:
//   - admission order is preserved at *injection* (a worker claims a new
//     job only when its own deque is empty, and prefers claiming over
//     stealing — job-level concurrency first, exactly PR 2's behaviour on
//     many-small-job mixes);
//   - one large job saturates every core (its tasks are the only stealable
//     work, so every otherwise-idle worker converges on it).
//
// Completion is continuation-style: the worker that finishes a group's
// last task runs its on_complete (reduction + result publication), so the
// claimer never blocks on the job it injected.
//
// Instrumentation (per configured registry):
//   counters   exec.tasks.run, exec.tasks.stolen, exec.tasks.skipped,
//              exec.groups.{submitted,completed,aborted}, exec.steal.fail
//   gauges     exec.workers, exec.deque.depth.<w>
//   histograms exec.group.wall_s, exec.group.parallel_efficiency
//              (busy-seconds / (wall * workers) per group — 1.0 means the
//              whole pool was kept hot for the job's entire wall time)
#pragma once

#include <chrono>
#include <functional>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/queue.h"
#include "common/thread_annotations.h"
#include "exec/steal_deque.h"
#include "exec/task_group.h"
#include "obs/metrics.h"

namespace sarbp::exec {

struct ExecOptions {
  /// Pool width; 0 = std::thread::hardware_concurrency().
  int workers = 0;
  /// When false, tasks run only on the worker that injected their group —
  /// the serial-run_job baseline the exec_scaling bench compares against.
  bool steal = true;
  /// Per-worker deque capacity (rounded up to a power of two). A full
  /// deque degrades gracefully: injection runs the overflow task inline.
  std::size_t deque_capacity = 1024;
  /// Metrics sink; null selects the process-global obs::registry(). Must
  /// outlive the executor.
  obs::Registry* metrics = nullptr;
  /// Prepended to every metric name this executor registers ("exec.*" and
  /// the inbox queue gauges). The sharded service gives each per-shard
  /// executor a distinct prefix ("shard.<k>.") so their counters do not
  /// collapse into one series in a shared registry.
  std::string metric_prefix;
  /// Pull-model job source for pool owners (the job service). Called by an
  /// idle worker; may block up to ~`budget` waiting for work. Returns the
  /// next group to inject (null when none is ready) and sets *end once no
  /// more groups will ever arrive (admission closed and backlog drained) —
  /// after which workers finish the remaining tasks and exit. A null
  /// return with *end unset just means "poll again". The callback runs
  /// concurrently on several workers and must be thread-safe.
  std::function<GroupPtr(int worker, std::chrono::microseconds budget,
                         bool* end)>
      source;
};

class TileExecutor {
 public:
  explicit TileExecutor(ExecOptions options);
  ~TileExecutor();

  TileExecutor(const TileExecutor&) = delete;
  TileExecutor& operator=(const TileExecutor&) = delete;

  [[nodiscard]] int workers() const { return num_workers_; }
  [[nodiscard]] const ExecOptions& options() const { return options_; }

  /// Push-model injection from any non-worker thread (standalone use:
  /// benches, tests). Groups are handed to workers in submission order.
  /// Returns false once drain() has begun.
  bool submit(GroupPtr group);

  /// submit() + group->wait().
  void run(GroupPtr group);

  /// Stops accepting submissions, runs every pending task to completion
  /// (including everything the source still hands out until it reports
  /// end-of-stream), and joins the workers. Idempotent; implied by the
  /// destructor. Owners with a `source` must close it (make it report
  /// *end) before calling drain, or drain never returns.
  void drain();

 private:
  struct WorkerState {
    explicit WorkerState(std::size_t deque_capacity) : deque(deque_capacity) {}
    StealDeque deque;
    obs::Gauge* depth_gauge = nullptr;
  };

  void worker_loop(int w);
  void inject(GroupPtr group, int w);
  void run_unit(TaskUnit* unit, int w, bool stolen);
  bool try_steal_and_run(int w);
  [[nodiscard]] bool all_deques_empty() const;
  /// Wakes idle workers (new stealable work or shutdown).
  void notify_idle();

  ExecOptions options_;
  obs::Registry* metrics_;
  int num_workers_;

  std::vector<std::unique_ptr<WorkerState>> states_;
  /// Push-model injections, FIFO. Closed by drain().
  BoundedQueue<GroupPtr> inbox_;
  std::atomic<bool> draining_{false};
  /// Latched once the source reports end-of-stream.
  std::atomic<bool> source_done_{false};

  /// Keeps injected groups alive until their last task finishes (deques
  /// hold raw TaskUnit pointers into the group).
  Mutex live_mutex_{SARBP_LOCK_LEVEL("exec.live")};
  std::unordered_map<TaskGroup*, GroupPtr> live_ SARBP_GUARDED_BY(live_mutex_);

  /// Idle workers park here (bounded wait) instead of sleep-polling;
  /// inject() and drain() notify so new stealable work or shutdown is
  /// picked up immediately.
  Mutex idle_mutex_{SARBP_LOCK_LEVEL("exec.idle")};
  CondVar idle_cv_;

  std::vector<std::thread> threads_;

  obs::Counter* tasks_run_ = nullptr;
  obs::Counter* tasks_stolen_ = nullptr;
  obs::Counter* tasks_skipped_ = nullptr;
  obs::Counter* groups_submitted_ = nullptr;
  obs::Counter* groups_completed_ = nullptr;
  obs::Counter* groups_aborted_ = nullptr;
  obs::Counter* steal_fail_ = nullptr;
  obs::Histogram* group_wall_s_ = nullptr;
  obs::Histogram* group_efficiency_ = nullptr;
};

}  // namespace sarbp::exec
