// Decomposes one backprojection batch into a TaskGroup for the tile
// executor: the (pulse x y x x) cube is cut by the §4.2 partitioner into
// (region-tile x pulse-chunk) parts, each task runs one part through the
// streaming kernel into a private SoaTile, and the group's completion
// continuation reduces the tiles and accumulates them into the output
// image.
//
// Determinism: the reduction combines the pulse slices of each region in a
// fixed stride-doubling tree over slice index, so the result is
// bit-identical regardless of which workers ran which tasks (steal on or
// off). With parts_pulse <= 2 it is also bit-identical to
// Backprojector::add_pulses, whose unordered critical-section reduction is
// order-free at <= 2 addends per pixel (float + is commutative).
//
// This is the push-model path (benches, tests, embedding without the job
// service); the service's cached-plan jobs build their groups in
// service/plan_cache.h instead.
#pragma once

#include <functional>

#include "backprojection/backprojector.h"
#include "common/grid2d.h"
#include "common/types.h"
#include "exec/task_group.h"
#include "geometry/grid.h"
#include "sim/phase_history.h"

namespace sarbp::exec {

/// Builds a group that accumulates every pulse of `history` into `out`
/// (+=; callers zero for a fresh image), decomposed for `parallelism`
/// concurrent workers. `history`, `grid`, `options`, and `out` must
/// outlive the group. `checkpoint` (nullable) is polled before each task;
/// false aborts the job and leaves `out` untouched.
GroupPtr make_backprojection_group(const sim::PhaseHistory& history,
                                   const geometry::ImageGrid& grid,
                                   const bp::BackprojectOptions& options,
                                   int parallelism, Grid2D<CFloat>& out,
                                   std::function<bool()> checkpoint = nullptr);

}  // namespace sarbp::exec
