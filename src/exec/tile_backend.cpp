#include "exec/tile_backend.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "backprojection/kernel_asr_block.h"
#include "common/aligned.h"
#include "common/check.h"

namespace sarbp::exec {

TileBackend::TileBackend(std::string name, double rate_prior,
                         double rate_smoothing, obs::Registry* metrics)
    : name_(std::move(name)),
      rate_prior_(rate_prior),
      rate_smoothing_(rate_smoothing) {
  ensure(rate_prior_ > 0, "TileBackend: rate prior must be positive");
  ensure(rate_smoothing_ > 0 && rate_smoothing_ <= 1,
         "TileBackend: rate smoothing in (0, 1]");
  if constexpr (obs::kEnabled) {
    auto& reg = metrics != nullptr ? *metrics : obs::registry();
    sweeps_ = &reg.counter("backend." + name_ + ".sweeps");
    rate_gauge_ = &reg.gauge("backend." + name_ + ".rate_bp_s");
    split_gauge_ = &reg.gauge("backend." + name_ + ".split_permille");
    sweep_s_ = &reg.histogram("backend." + name_ + ".sweep_s");
  }
}

void TileBackend::record(double backprojections, double measured_seconds) {
  const double simulated = simulated_seconds(measured_seconds);
  if (simulated <= 0.0 || backprojections <= 0.0) return;
  const double observed = backprojections / simulated;
  double smoothed;
  {
    MutexLock lock(mutex_);
    rate_ = rate_ <= 0.0 ? observed
                         : rate_smoothing_ * observed +
                               (1.0 - rate_smoothing_) * rate_;
    smoothed = rate_;
  }
  if (sweeps_) sweeps_->add();
  if (sweep_s_) sweep_s_->record(simulated);
  if (rate_gauge_) rate_gauge_->set(static_cast<std::int64_t>(smoothed));
}

double TileBackend::observed_rate() const {
  MutexLock lock(mutex_);
  return rate_;
}

void TileBackend::set_split_gauge(double fraction) {
  if (split_gauge_) {
    split_gauge_->set(static_cast<std::int64_t>(std::llround(fraction * 1000)));
  }
}

namespace {

/// Pulse loop shared by the concrete backends: per-pulse loop order and
/// block-local geometry, differing only in the per-(block, pulse) sweep.
/// run_first/run_last bracket maximal runs of consecutive pulses with the
/// same loop order — the SIMD backend amortizes its y_inner workspace over
/// a run; the per-pulse backends ignore them.
template <class SweepFn>
void for_each_pulse(const PlanView& plan, const sim::PhaseHistory& history,
                    Index block, Index pulse_begin, Index pulse_end,
                    SweepFn&& sweep) {
  const auto& spec = plan.blocks[static_cast<std::size_t>(block)];
  const Index bx = spec.x0 - plan.region_x0;
  const Index by = spec.y0 - plan.region_y0;
  const Index samples = history.samples_per_pulse();
  const auto order_at = [&](Index p) {
    return plan.pulse_order[static_cast<std::size_t>(p)];
  };
  for (Index p = pulse_begin; p < pulse_end; ++p) {
    const bool x_inner = order_at(p) == geometry::LoopOrder::kXInner;
    const bool run_first = p == pulse_begin || order_at(p - 1) != order_at(p);
    const bool run_last = p + 1 == pulse_end || order_at(p + 1) != order_at(p);
    const Index len_l = x_inner ? spec.width : spec.height;
    const Index len_m = x_inner ? spec.height : spec.width;
    sweep(plan.tables_for(block, p), history.pulse(p).data(), samples,
          x_inner, bx, by, len_l, len_m, run_first, run_last);
  }
}

/// The plan executor's scalar sweep, verbatim — the byte-identity anchor.
class HostScalarBackend final : public TileBackend {
 public:
  HostScalarBackend(std::string name, double rate_smoothing,
                    obs::Registry* metrics)
      : TileBackend(std::move(name), 1.0, rate_smoothing, metrics) {}

  void sweep_block(const PlanView& plan, const sim::PhaseHistory& history,
                   Index block, Index pulse_begin, Index pulse_end,
                   bp::SoaTile& tile) override {
    for_each_pulse(plan, history, block, pulse_begin, pulse_end,
                   [&](const asr::BlockTables& t, const CFloat* in,
                       Index samples, bool x_inner, Index bx, Index by,
                       Index len_l, Index len_m, bool /*run_first*/,
                       bool /*run_last*/) {
                     bp::asr_sweep_block(t, in, samples, x_inner, bx, by,
                                         len_l, len_m, tile);
                   });
  }
};

/// Lane count of the resolved ISA — the capability prior for a SIMD
/// backend relative to the scalar one.
double simd_rate_prior(bp::SimdIsa isa) {
  switch (bp::asr_resolve_isa(isa)) {
    case bp::SimdIsa::kAvx512: return 16.0;
    case bp::SimdIsa::kAvx2: return 8.0;
    default: return 1.0;
  }
}

/// Fused SIMD plan replay with runtime ISA dispatch. The y_inner workspace
/// is thread_local (sweep_block runs concurrently on several long-lived
/// executor workers) and stays resident across each same-orientation pulse
/// run, so the zero + transposed flush cost is per block, not per pulse.
class HostSimdBackend final : public TileBackend {
 public:
  HostSimdBackend(std::string name, bp::SimdIsa isa, bp::KernelVariant variant,
                  double rate_smoothing, obs::Registry* metrics)
      : TileBackend(std::move(name), simd_rate_prior(isa), rate_smoothing,
                    metrics),
        isa_(bp::asr_resolve_isa(isa)),
        variant_(variant) {}

  void sweep_block(const PlanView& plan, const sim::PhaseHistory& history,
                   Index block, Index pulse_begin, Index pulse_end,
                   bp::SoaTile& tile) override {
    static thread_local AlignedVector<float> ws_re;
    static thread_local AlignedVector<float> ws_im;
    for_each_pulse(plan, history, block, pulse_begin, pulse_end,
                   [&](const asr::BlockTables& t, const CFloat* in,
                       Index samples, bool x_inner, Index bx, Index by,
                       Index len_l, Index len_m, bool run_first,
                       bool run_last) {
                     bp::asr_plan_sweep_simd(t, in, samples, x_inner, bx, by,
                                             len_l, len_m, tile, isa_,
                                             variant_, ws_re, ws_im,
                                             /*zero_ws=*/run_first,
                                             /*flush_ws=*/run_last);
                   });
  }

 private:
  const bp::SimdIsa isa_;
  const bp::KernelVariant variant_;
};

/// Simulated coprocessor: the arithmetic physically runs on this host
/// (scalar sweep, so abort/checkpoint latency stays block-bounded); its
/// *simulated* time is the measured time rescaled by the device/host
/// effective-rate ratio, which is what the split adapts to. PCIe framing
/// costs stay with OffloadRuntime's whole-frame accounting (DESIGN.md §2).
class OffloadSimBackend final : public TileBackend {
 public:
  OffloadSimBackend(std::string name, offload::DeviceSpec device,
                    offload::DeviceSpec host_model, double rate_smoothing,
                    obs::Registry* metrics)
      : TileBackend(std::move(name),
                    device.effective_gflops() / host_model.effective_gflops(),
                    rate_smoothing, metrics),
        device_(std::move(device)),
        host_model_(std::move(host_model)) {
    device_.validate();
    host_model_.validate();
  }

  void sweep_block(const PlanView& plan, const sim::PhaseHistory& history,
                   Index block, Index pulse_begin, Index pulse_end,
                   bp::SoaTile& tile) override {
    for_each_pulse(plan, history, block, pulse_begin, pulse_end,
                   [&](const asr::BlockTables& t, const CFloat* in,
                       Index samples, bool x_inner, Index bx, Index by,
                       Index len_l, Index len_m, bool /*run_first*/,
                       bool /*run_last*/) {
                     bp::asr_sweep_block(t, in, samples, x_inner, bx, by,
                                         len_l, len_m, tile);
                   });
  }

  [[nodiscard]] double simulated_seconds(
      double measured_seconds) const override {
    return offload::simulated_compute_seconds(device_, host_model_,
                                              measured_seconds);
  }

 private:
  offload::DeviceSpec device_;
  offload::DeviceSpec host_model_;
};

}  // namespace

std::shared_ptr<TileBackend> make_backend(const BackendSpec& spec,
                                          double rate_smoothing,
                                          obs::Registry* metrics) {
  switch (spec.kind) {
    case BackendSpec::Kind::kHostScalar:
      return std::make_shared<HostScalarBackend>(
          spec.name.empty() ? "scalar" : spec.name, rate_smoothing, metrics);
    case BackendSpec::Kind::kHostSimd: {
      const std::string name =
          spec.name.empty()
              ? std::string("simd-") +
                    bp::simd_isa_name(bp::asr_resolve_isa(spec.isa))
              : spec.name;
      return std::make_shared<HostSimdBackend>(name, spec.isa, spec.variant,
                                               rate_smoothing, metrics);
    }
    case BackendSpec::Kind::kOffloadSim: {
      const std::string name = spec.name.empty()
                                   ? "offload-" + spec.device.name
                                   : spec.name;
      return std::make_shared<OffloadSimBackend>(
          name, spec.device, spec.host_model, rate_smoothing, metrics);
    }
  }
  ensure(false, "make_backend: unknown backend kind");
  return nullptr;
}

BackendSet::BackendSet(const std::vector<BackendSpec>& specs,
                       double rate_smoothing, obs::Registry* metrics) {
  ensure(!specs.empty(), "BackendSet: at least one backend");
  backends_.reserve(specs.size());
  for (const auto& spec : specs) {
    backends_.push_back(make_backend(spec, rate_smoothing, metrics));
  }
}

std::vector<double> BackendSet::split() const {
  std::vector<double> weights(backends_.size());
  bool all_observed = true;
  for (std::size_t i = 0; i < backends_.size(); ++i) {
    if (backends_[i]->observed_rate() <= 0.0) {
      all_observed = false;
      break;
    }
  }
  double total = 0.0;
  for (std::size_t i = 0; i < backends_.size(); ++i) {
    weights[i] = all_observed ? backends_[i]->observed_rate()
                              : backends_[i]->rate_prior();
    total += weights[i];
  }
  for (auto& w : weights) w /= total;
  return weights;
}

std::vector<Index> BackendSet::partition(Index n) const {
  const std::vector<double> fractions = split();
  std::vector<Index> bounds(backends_.size() + 1, 0);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < backends_.size(); ++i) {
    cumulative += fractions[i];
    const auto edge =
        static_cast<Index>(std::llround(cumulative * static_cast<double>(n)));
    bounds[i + 1] = std::clamp<Index>(edge, bounds[i], n);
    backends_[i]->set_split_gauge(fractions[i]);
  }
  bounds.back() = n;
  return bounds;
}

}  // namespace sarbp::exec
