// Chase-Lev–style work-stealing deque (single owner, many thieves).
//
// The owner pushes and pops at the bottom (LIFO, keeps its own tail of a
// job's tasks cache-hot); thieves steal at the top (FIFO, so the oldest —
// typically largest-remaining — task migrates first). This is the
// fixed-capacity variant: the executor sizes it for the worst-case task
// fan-out of one job and falls back to inline execution when full, so the
// growable-array machinery of the original is unnecessary.
//
// Memory ordering follows the strong (sequentially consistent) Chase-Lev
// formulation rather than the fence-based weak-memory one: every access to
// `top_`/`bottom_` that participates in the owner/thief race is seq_cst,
// and the cells themselves are atomics. That costs one fenced store per
// owner pop — noise against millisecond-scale tile tasks — and keeps the
// algorithm expressible entirely in the C++ memory model, which is what
// lets TSan verify it (no standalone fences, which TSan cannot model).
//
// ABA note: steal() reads its cell *before* the CAS on top_. The cell can
// be reused by the owner only after bottom_ advances capacity slots past
// the thief's `t`, which requires top_ > t — and any advance of top_ makes
// the thief's CAS fail, so a stale read is always discarded.
//
// The deque is templated on an atomics policy so the schedule-exploring
// model checker (tests/model/) can compile the *same algorithm* against
// instrumented atomics that yield to a virtual scheduler before every
// access. Production code uses the `StealDeque` alias, which binds
// std::atomic and compiles to exactly the pre-template code.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/check.h"

namespace sarbp::exec {

class TaskGroup;

/// One schedulable unit: task `index` of `group`. Lives in the group's
/// contiguous unit array so deque cells are a single pointer.
struct TaskUnit {
  TaskGroup* group = nullptr;
  std::uint32_t index = 0;
};

/// Default atomics policy: plain std::atomic.
struct StdAtomicPolicy {
  template <class T>
  using Atomic = std::atomic<T>;
};

template <class Policy = StdAtomicPolicy>
class BasicStealDeque {
  template <class T>
  using Atomic = typename Policy::template Atomic<T>;

 public:
  explicit BasicStealDeque(std::size_t capacity) {
    std::size_t cap = 1;
    while (cap < capacity) cap <<= 1;
    cells_ = std::vector<Atomic<TaskUnit*>>(cap);
    mask_ = static_cast<std::int64_t>(cap) - 1;
  }

  BasicStealDeque(const BasicStealDeque&) = delete;
  BasicStealDeque& operator=(const BasicStealDeque&) = delete;

  /// Owner only. False when full (caller runs the task inline instead).
  bool push(TaskUnit* unit) {
    // order: relaxed — bottom_ is only written by the owner (this thread).
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    // order: acquire — pairs with the thieves' seq_cst CAS on top_ so the
    // fullness check never sees a stale (smaller) top and rejects spuriously
    // more than one slot early.
    const std::int64_t t = top_.load(std::memory_order_acquire);
    if (b - t > mask_) return false;
    // order: relaxed — the cell is published by the seq_cst bottom_ store
    // below; no thief reads index b before observing bottom_ > b.
    cells_[static_cast<std::size_t>(b & mask_)].store(
        unit, std::memory_order_relaxed);
    // order: seq_cst publish — a thief that observes bottom_ > t also
    // observes the cell written above (strong Chase-Lev formulation).
    bottom_.store(b + 1, std::memory_order_seq_cst);
    return true;
  }

  /// Owner only. Null when empty (or a thief won the last item).
  TaskUnit* pop() {
    // order: relaxed — owner-private read of bottom_ (see push()).
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    // order: seq_cst reservation — must be globally ordered against the
    // thieves' top_ reads: a thief that runs after this store sees the
    // shrunken deque, so owner and thief can never both take the cell at b.
    bottom_.store(b, std::memory_order_seq_cst);
    // order: seq_cst — reads top_ after the reservation above in the single
    // total order; a stale top here could double-hand-out the last item.
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    if (t > b) {  // already empty: undo the reservation
      // order: relaxed — only the owner reads bottom_ before the next
      // seq_cst publication.
      bottom_.store(b + 1, std::memory_order_relaxed);
      return nullptr;
    }
    TaskUnit* unit =
        // order: relaxed — cell was written by this owner (push) and cannot
        // be concurrently overwritten: reuse of slot b requires top_ to
        // advance past b first, which the CAS below detects.
        cells_[static_cast<std::size_t>(b & mask_)].load(
            std::memory_order_relaxed);
    if (t == b) {
      // Last item: race thieves for it through top_.
      // order: seq_cst CAS — participates in the same total order as
      // steal()'s CAS; exactly one of owner/thief advances top_ to b+1.
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        unit = nullptr;  // a thief got there first
      }
      // order: relaxed — restores bottom_ for the (quiescent) empty deque;
      // next push republishes with seq_cst.
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return unit;
  }

  /// Any thread. Null when empty or when another thief/the owner won the
  /// race (callers just move on to the next victim).
  TaskUnit* steal() {
    // order: seq_cst — top_ then bottom_ must read in program order within
    // the single total order, or an interleaved owner pop could make the
    // emptiness check pass on a cell the owner already reclaimed.
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    // order: seq_cst — see above; also pairs with push()'s publishing store
    // so the cell read below is initialized.
    const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
    if (t >= b) return nullptr;
    TaskUnit* unit =
        // order: relaxed — safe even if stale (ABA note in the header): any
        // owner reuse of slot t forces top_ past t, failing the CAS below,
        // so a stale read is always discarded.
        cells_[static_cast<std::size_t>(t & mask_)].load(
            std::memory_order_relaxed);
    // order: seq_cst CAS — the claim; totally ordered against pop()'s CAS
    // and other thieves so each index is handed out exactly once.
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return nullptr;
    }
    return unit;
  }

  /// Approximate occupancy (racy; used for idle/exit heuristics and the
  /// depth gauges, never for correctness).
  [[nodiscard]] std::size_t size_approx() const {
    // order: relaxed — deliberately racy snapshot; callers tolerate any
    // interleaving (heuristics only).
    const std::int64_t t = top_.load(std::memory_order_relaxed);
    // order: relaxed — same racy snapshot.
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    return b > t ? static_cast<std::size_t>(b - t) : 0;
  }

  [[nodiscard]] std::size_t capacity() const {
    return static_cast<std::size_t>(mask_) + 1;
  }

 private:
  std::vector<Atomic<TaskUnit*>> cells_;
  std::int64_t mask_ = 0;
  alignas(64) Atomic<std::int64_t> top_{0};
  alignas(64) Atomic<std::int64_t> bottom_{0};
};

/// The production deque: std::atomic, zero abstraction cost.
using StealDeque = BasicStealDeque<>;

}  // namespace sarbp::exec
