// Chase-Lev–style work-stealing deque (single owner, many thieves).
//
// The owner pushes and pops at the bottom (LIFO, keeps its own tail of a
// job's tasks cache-hot); thieves steal at the top (FIFO, so the oldest —
// typically largest-remaining — task migrates first). This is the
// fixed-capacity variant: the executor sizes it for the worst-case task
// fan-out of one job and falls back to inline execution when full, so the
// growable-array machinery of the original is unnecessary.
//
// Memory ordering follows the strong (sequentially consistent) Chase-Lev
// formulation rather than the fence-based weak-memory one: every access to
// `top_`/`bottom_` that participates in the owner/thief race is seq_cst,
// and the cells themselves are atomics. That costs one fenced store per
// owner pop — noise against millisecond-scale tile tasks — and keeps the
// algorithm expressible entirely in the C++ memory model, which is what
// lets TSan verify it (no standalone fences, which TSan cannot model).
//
// ABA note: steal() reads its cell *before* the CAS on top_. The cell can
// be reused by the owner only after bottom_ advances capacity slots past
// the thief's `t`, which requires top_ > t — and any advance of top_ makes
// the thief's CAS fail, so a stale read is always discarded.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/check.h"

namespace sarbp::exec {

class TaskGroup;

/// One schedulable unit: task `index` of `group`. Lives in the group's
/// contiguous unit array so deque cells are a single pointer.
struct TaskUnit {
  TaskGroup* group = nullptr;
  std::uint32_t index = 0;
};

class StealDeque {
 public:
  explicit StealDeque(std::size_t capacity) {
    std::size_t cap = 1;
    while (cap < capacity) cap <<= 1;
    cells_ = std::vector<std::atomic<TaskUnit*>>(cap);
    mask_ = static_cast<std::int64_t>(cap) - 1;
  }

  StealDeque(const StealDeque&) = delete;
  StealDeque& operator=(const StealDeque&) = delete;

  /// Owner only. False when full (caller runs the task inline instead).
  bool push(TaskUnit* unit) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    if (b - t > mask_) return false;
    cells_[static_cast<std::size_t>(b & mask_)].store(
        unit, std::memory_order_relaxed);
    // seq_cst publish: a thief that observes bottom_ > t also observes the
    // cell written above.
    bottom_.store(b + 1, std::memory_order_seq_cst);
    return true;
  }

  /// Owner only. Null when empty (or a thief won the last item).
  TaskUnit* pop() {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    bottom_.store(b, std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    if (t > b) {  // already empty: undo the reservation
      bottom_.store(b + 1, std::memory_order_relaxed);
      return nullptr;
    }
    TaskUnit* unit =
        cells_[static_cast<std::size_t>(b & mask_)].load(std::memory_order_relaxed);
    if (t == b) {
      // Last item: race thieves for it through top_.
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        unit = nullptr;  // a thief got there first
      }
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return unit;
  }

  /// Any thread. Null when empty or when another thief/the owner won the
  /// race (callers just move on to the next victim).
  TaskUnit* steal() {
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
    if (t >= b) return nullptr;
    TaskUnit* unit =
        cells_[static_cast<std::size_t>(t & mask_)].load(std::memory_order_relaxed);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return nullptr;
    }
    return unit;
  }

  /// Approximate occupancy (racy; used for idle/exit heuristics and the
  /// depth gauges, never for correctness).
  [[nodiscard]] std::size_t size_approx() const {
    const std::int64_t t = top_.load(std::memory_order_relaxed);
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    return b > t ? static_cast<std::size_t>(b - t) : 0;
  }

  [[nodiscard]] std::size_t capacity() const {
    return static_cast<std::size_t>(mask_) + 1;
  }

 private:
  std::vector<std::atomic<TaskUnit*>> cells_;
  std::int64_t mask_ = 0;
  alignas(64) std::atomic<std::int64_t> top_{0};
  alignas(64) std::atomic<std::int64_t> bottom_{0};
};

}  // namespace sarbp::exec
