#include "exec/executor.h"

#include <algorithm>
#include <exception>
#include <string>
#include <unordered_map>
#include <utility>

#include "common/check.h"

namespace sarbp::exec {

namespace {

int resolve_workers(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

}  // namespace

TileExecutor::TileExecutor(ExecOptions options)
    : options_(std::move(options)),
      metrics_(options_.metrics != nullptr ? options_.metrics
                                           : &obs::registry()),
      num_workers_(resolve_workers(options_.workers)),
      inbox_(std::max<std::size_t>(std::size_t{64},
                                   static_cast<std::size_t>(num_workers_) * 4),
             // c_str of a full-expression temporary: the queue ctor only
             // reads the name, it does not retain it.
             (options_.metric_prefix + "exec.inbox").c_str(), metrics_) {
  ensure(options_.deque_capacity >= 2, "TileExecutor: deque_capacity too small");
  if constexpr (obs::kEnabled) {
    const std::string& pre = options_.metric_prefix;
    tasks_run_ = &metrics_->counter(pre + "exec.tasks.run");
    tasks_stolen_ = &metrics_->counter(pre + "exec.tasks.stolen");
    tasks_skipped_ = &metrics_->counter(pre + "exec.tasks.skipped");
    groups_submitted_ = &metrics_->counter(pre + "exec.groups.submitted");
    groups_completed_ = &metrics_->counter(pre + "exec.groups.completed");
    groups_aborted_ = &metrics_->counter(pre + "exec.groups.aborted");
    steal_fail_ = &metrics_->counter(pre + "exec.steal.fail");
    group_wall_s_ = &metrics_->histogram(pre + "exec.group.wall_s");
    group_efficiency_ =
        &metrics_->histogram(pre + "exec.group.parallel_efficiency");
    metrics_->gauge(pre + "exec.workers").set(num_workers_);
  }
  states_.reserve(static_cast<std::size_t>(num_workers_));
  for (int w = 0; w < num_workers_; ++w) {
    auto state = std::make_unique<WorkerState>(options_.deque_capacity);
    if constexpr (obs::kEnabled) {
      state->depth_gauge = &metrics_->gauge(
          options_.metric_prefix + "exec.deque.depth." + std::to_string(w));
    }
    states_.push_back(std::move(state));
  }
  threads_.reserve(static_cast<std::size_t>(num_workers_));
  for (int w = 0; w < num_workers_; ++w) {
    threads_.emplace_back([this, w] { worker_loop(w); });
  }
}

TileExecutor::~TileExecutor() { drain(); }

bool TileExecutor::submit(GroupPtr group) {
  ensure(group != nullptr, "TileExecutor::submit: null group");
  // order: acquire — pairs with drain()'s release store; a submitter that
  // sees the flag also sees the inbox close that follows it.
  if (draining_.load(std::memory_order_acquire)) return false;
  const bool accepted = inbox_.push(std::move(group));
  if (accepted) notify_idle();
  return accepted;
}

void TileExecutor::run(GroupPtr group) {
  // Keep our own reference across the wait: the last-finishing worker
  // releases the executor's ownership, and the group (with the condition
  // variable wait() blocks on) must not die under us.
  GroupPtr keep = group;
  ensure(submit(std::move(group)), "TileExecutor::run: executor is draining");
  keep->wait();
}

void TileExecutor::drain() {
  // order: release — submitters that observe the flag (acquire) must also
  // observe the closed inbox, so no group is silently dropped.
  draining_.store(true, std::memory_order_release);
  inbox_.close();
  notify_idle();
  for (auto& thread : threads_) {
    if (thread.joinable()) thread.join();
  }
}

void TileExecutor::notify_idle() {
  // Taking the lock orders the notify after any in-progress wait entry, so
  // a worker that just decided to park cannot miss the wakeup forever (the
  // bounded wait_for covers the remaining benign race).
  { MutexLock lock(idle_mutex_); }
  idle_cv_.notify_all();
}

void TileExecutor::inject(GroupPtr group, int w) {
  TaskGroup* g = group.get();
  {
    // injected_ is read by whichever worker retires the last task; guard
    // the hand-off instead of relying on the deque publish for ordering.
    MutexLock lock(g->mutex_);
    g->injected_ = std::chrono::steady_clock::now();
  }
  if (groups_submitted_) groups_submitted_->add();
  {
    MutexLock lock(live_mutex_);
    live_.emplace(g, std::move(group));
  }
  WorkerState& state = *states_[static_cast<std::size_t>(w)];
  for (TaskUnit& unit : g->units()) {
    if (!state.deque.push(&unit)) {
      // Deque full: degrade gracefully by running the overflow task here.
      run_unit(&unit, w, /*stolen=*/false);
    }
  }
  if (state.depth_gauge) {
    state.depth_gauge->set(
        static_cast<std::int64_t>(state.deque.size_approx()));
  }
  // New stealable tasks: wake parked peers.
  notify_idle();
}

void TileExecutor::run_unit(TaskUnit* unit, int w, bool stolen) {
  TaskGroup* g = unit->group;
  if (stolen) {
    // order: relaxed — statistics counter, read only after completion.
    g->stolen_.fetch_add(1, std::memory_order_relaxed);
    if (tasks_stolen_) tasks_stolen_->add();
  }
  bool ran = false;
  if (!g->aborted()) {
    // Per-task cancellation checkpoint: polled across the pool, so a
    // cancel/deadline lands within one task's latency no matter how many
    // workers the job is spread over.
    if (g->checkpoint_ && !g->checkpoint_()) {
      g->abort();
    } else if (!g->aborted()) {
      const auto start = std::chrono::steady_clock::now();
      try {
        g->tasks_[unit->index](w, *g);
        ran = true;
      } catch (const std::exception& e) {
        g->fail(e.what());
      } catch (...) {
        g->fail("task threw a non-standard exception");
      }
      g->busy_ns_.fetch_add(
          static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - start)
                  .count()),
          // order: relaxed — statistics sum; the acq_rel completion
          // decrement below orders it before the continuation reads it.
          std::memory_order_relaxed);
    }
  }
  if (ran) {
    if (tasks_run_) tasks_run_->add();
  } else if (tasks_skipped_) {
    tasks_skipped_->add();
  }

  // Skipped tasks still count toward completion so on_complete runs exactly
  // once, after every unit has been claimed and retired.
  // order: acq_rel — every worker's task effects happen-before the last
  // finisher's continuation (release on the decrement, acquire on reading
  // the final value); this is the reduction's publication edge.
  if (g->remaining_.fetch_sub(1, std::memory_order_acq_rel) != 1) return;

  // Last task: run the continuation on this worker.
  GroupPtr self;
  {
    MutexLock lock(live_mutex_);
    auto it = live_.find(g);
    if (it != live_.end()) {
      self = std::move(it->second);
      live_.erase(it);
    }
  }
  double wall = 0.0;
  {
    MutexLock lock(g->mutex_);
    wall = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         g->injected_)
               .count();
    g->wall_seconds_ = wall;
  }
  if (g->on_complete_) {
    try {
      g->on_complete_(*g);
    } catch (const std::exception& e) {
      g->fail(std::string("on_complete: ") + e.what());
    } catch (...) {
      g->fail("on_complete threw a non-standard exception");
    }
  }
  if (g->aborted()) {
    if (groups_aborted_) groups_aborted_->add();
  } else if (groups_completed_) {
    groups_completed_->add();
  }
  if (group_wall_s_) group_wall_s_->record(wall);
  if (group_efficiency_ && wall > 0.0) {
    group_efficiency_->record(g->busy_seconds() /
                              (wall * static_cast<double>(num_workers_)));
  }
  {
    // Notify while holding the lock: a waiter may destroy the group the
    // moment it observes done_, so the condition variable must not be
    // touched after the unlock. The model checker proves the unlocked
    // variant loses this race (tests/model/test_model.cpp, UseAfterFree).
    MutexLock lock(g->mutex_);
    g->done_ = true;
    g->cv_.notify_all();
  }
  // `self` releases the executor's ownership here; waiters hold their own
  // GroupPtr, and the service continuation has already published results.
}

bool TileExecutor::try_steal_and_run(int w) {
  // Rotate the starting victim by thief id so thieves spread out instead of
  // all hammering worker 0.
  for (int i = 1; i < num_workers_; ++i) {
    const int victim = (w + i) % num_workers_;
    WorkerState& vs = *states_[static_cast<std::size_t>(victim)];
    if (TaskUnit* unit = vs.deque.steal()) {
      if (vs.depth_gauge) {
        vs.depth_gauge->set(
            static_cast<std::int64_t>(vs.deque.size_approx()));
      }
      run_unit(unit, w, /*stolen=*/true);
      return true;
    }
  }
  if (steal_fail_) steal_fail_->add();
  return false;
}

bool TileExecutor::all_deques_empty() const {
  for (const auto& state : states_) {
    if (state->deque.size_approx() != 0) return false;
  }
  return true;
}

void TileExecutor::worker_loop(int w) {
  using namespace std::chrono_literals;
  WorkerState& state = *states_[static_cast<std::size_t>(w)];
  while (true) {
    // 1. Drain our own deque (LIFO — stay cache-hot on the job we claimed).
    while (TaskUnit* unit = state.deque.pop()) {
      run_unit(unit, w, /*stolen=*/false);
    }
    if (state.depth_gauge) state.depth_gauge->set(0);

    // 2. Claim new work before stealing: job-level concurrency first, so a
    // burst of small jobs spreads one-per-worker exactly as in the
    // pre-executor service. Claiming only with an empty deque preserves
    // admission order at injection.
    if (auto group = inbox_.try_pop()) {
      inject(std::move(*group), w);
      continue;
    }
    // order: acquire/release on source_done_ — the latch pairs a worker's
    // end-of-stream observation with everything the source wrote before
    // reporting it (drain sees a consistent backlog).
    if (options_.source && !source_done_.load(std::memory_order_acquire)) {
      bool end = false;
      GroupPtr group = options_.source(w, 0us, &end);
      // order: release — see the source_done_ note above.
      if (end) source_done_.store(true, std::memory_order_release);
      if (group) {
        inject(std::move(group), w);
        continue;
      }
    }

    // 3. No new job ready: steal a task from a running job.
    if (options_.steal && try_steal_and_run(w)) continue;

    // 4. Nothing anywhere. Exit when no more work can appear. The check is
    // approximate (a peer mid-claim has an empty deque until it injects),
    // but that is benign: the claimer itself runs every task it injects.
    const bool no_more_sources =
        // order: acquire — see the source_done_ note above.
        (!options_.source || source_done_.load(std::memory_order_acquire)) &&
        inbox_.closed();
    if (no_more_sources && inbox_.size() == 0 && all_deques_empty()) break;

    // 5. Blocking waits: give the source a real budget, else park on the
    // idle condition variable — inject()/drain() notify it, so new
    // stealable work is picked up immediately and the bounded wait keeps
    // steal retries and the exit check responsive without spinning.
    // order: acquire — see the source_done_ note above.
    if (options_.source && !source_done_.load(std::memory_order_acquire)) {
      bool end = false;
      GroupPtr group = options_.source(w, 1000us, &end);
      // order: release — see the source_done_ note above.
      if (end) source_done_.store(true, std::memory_order_release);
      if (group) inject(std::move(group), w);
    } else if (auto group = inbox_.try_pop_for(1ms)) {
      inject(std::move(*group), w);
    } else {
      MutexLock lock(idle_mutex_);
      idle_cv_.wait_for(lock, 200us);
    }
  }
}

}  // namespace sarbp::exec
