// Runtime lock-order cycle detector implementation (see deadlock.h).
//
// This file is only compiled into sarbp_common when the build sets
// SARBP_DEADLOCK_CHECK=1 (CMake option of the same name), and it is the
// one translation unit outside thread_annotations.h allowed to use a raw
// std::mutex: the detector cannot guard its own graph with a tracked
// sarbp::Mutex, because the hooks would then re-enter themselves.

#include "common/deadlock.h"

#if SARBP_DEADLOCK_CHECK

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>  // lint: allow(raw-mutex) -- the detector's own graph lock must not be a tracked sarbp::Mutex
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace sarbp::lockdep {
namespace {

struct Node;

struct GraphEdge {
  Node* to = nullptr;
  Site holder_site;   // where the `from` lock was held, first observation
  Site acquire_site;  // where the `to` lock was being acquired
};

struct Node {
  std::string name;
  std::vector<GraphEdge> out;
};

struct HeldEntry {
  const void* mutex = nullptr;
  const char* level = nullptr;
  Site site;
  bool via_try = false;
};

// The graph is keyed by level NAME (std::map nodes are address-stable, so
// Node* edges stay valid across inserts). Instances of the same level are
// one node: the hierarchy is a property of the code, not of objects.
std::mutex g_graph_mu;  // lint: allow(raw-mutex) -- see file comment
std::map<std::string, Node>* g_graph = nullptr;
std::atomic<std::size_t> g_edges{0};
std::atomic<std::size_t> g_cycles{0};
std::atomic<ReportHandler> g_handler{nullptr};

// Per-thread held stack, and a re-entry guard: the report handler (and
// the obs-metric updates in the default one) may take tracked locks;
// while a hook is on the stack those nested acquisitions are invisible.
thread_local std::vector<HeldEntry> t_held;
thread_local bool t_in_hook = false;

struct HookGuard {
  HookGuard() { t_in_hook = true; }
  ~HookGuard() { t_in_hook = false; }
};

Node& node_for(const char* level) {
  if (g_graph == nullptr) g_graph = new std::map<std::string, Node>();
  Node& node = (*g_graph)[level];
  if (node.name.empty()) node.name = level;
  return node;
}

// DFS for a path `from` -> ... -> `to` over the existing edge set,
// appending the path's edges to `path` on success.
bool find_path(Node* from, Node* to, std::vector<Node*>& visited,
               std::vector<CycleEdge>& path) {
  for (Node* seen : visited) {
    if (seen == from) return false;
  }
  visited.push_back(from);
  for (GraphEdge& edge : from->out) {
    path.push_back(CycleEdge{from->name.c_str(), edge.to->name.c_str(),
                             edge.holder_site, edge.acquire_site});
    if (edge.to == to || find_path(edge.to, to, visited, path)) return true;
    path.pop_back();
  }
  return false;
}

void default_report(const CycleReport& report) {
  std::fprintf(stderr,
               "[sarbp lockdep] lock-order cycle detected (%zu edges):\n",
               report.edges.size());
  for (const CycleEdge& edge : report.edges) {
    std::fprintf(stderr,
                 "  %s -> %s  (held at %s:%d, acquiring at %s:%d)\n",
                 edge.from, edge.to, edge.holder_site.file,
                 edge.holder_site.line, edge.acquire_site.file,
                 edge.acquire_site.line);
  }
  if constexpr (obs::kEnabled) {
    obs::registry().counter("deadlock.cycles").add();
  }
}

void dispatch(const CycleReport& report) {
  // order: relaxed — statistics counter, read by tests after joining.
  g_cycles.fetch_add(1, std::memory_order_relaxed);
  // order: acquire — pairs with set_report_handler's release half, so a
  // handler installed before the racing acquisition is seen intact.
  ReportHandler handler = g_handler.load(std::memory_order_acquire);
  if (handler != nullptr) {
    handler(report);
  } else {
    default_report(report);
  }
}

}  // namespace

void on_lock_attempt(const void* mutex, const char* level, Site site) {
  (void)mutex;
  if (t_in_hook || level == nullptr) return;
  HookGuard guard;
  // Cycles found under the graph lock are reported after releasing it:
  // the handler may itself take tracked locks (suppressed by the guard),
  // and stderr I/O has no business inside the hot-path critical section.
  std::vector<CycleReport> reports;
  std::size_t new_edges = 0;
  {
    // lint: allow(raw-mutex) -- the detector's graph lock must be untracked
    std::lock_guard<std::mutex> graph_lock(g_graph_mu);
    for (const HeldEntry& held : t_held) {
      if (held.level == nullptr) continue;
      Node& from = node_for(held.level);
      Node& to = node_for(level);
      bool known = false;
      for (const GraphEdge& edge : from.out) {
        if (edge.to == &to) {
          known = true;
          break;
        }
      }
      if (known) continue;
      from.out.push_back(GraphEdge{&to, held.site, site});
      ++new_edges;
      CycleReport report;
      report.edges.push_back(CycleEdge{from.name.c_str(), to.name.c_str(),
                                       held.site, site});
      if (&from == &to) {
        // Self-edge: same-level blocking nesting, a cycle of length one.
        reports.push_back(std::move(report));
        continue;
      }
      std::vector<Node*> visited;
      if (find_path(&to, &from, visited, report.edges)) {
        reports.push_back(std::move(report));
      }
    }
  }
  if (new_edges > 0) {
    // order: relaxed — statistics counter, read by tests after joining.
    g_edges.fetch_add(new_edges, std::memory_order_relaxed);
    if constexpr (obs::kEnabled) {
      obs::registry().counter("deadlock.edges").add(
          static_cast<std::int64_t>(new_edges));
    }
  }
  for (const CycleReport& report : reports) dispatch(report);
}

void on_lock_acquired(const void* mutex, const char* level, Site site,
                      bool via_try) {
  if (t_in_hook) return;
  t_held.push_back(HeldEntry{mutex, level, site, via_try});
}

void on_unlock(const void* mutex) {
  if (t_in_hook) return;
  // Search from the back: MutexLock allows out-of-LIFO-order unlock, and
  // the most recent entry for this mutex is the one being released.
  for (auto it = t_held.rbegin(); it != t_held.rend(); ++it) {
    if (it->mutex == mutex) {
      t_held.erase(std::next(it).base());
      return;
    }
  }
  // Not found: acquired while a hook was on the stack (guard-suppressed)
  // or on another thread. Nothing to pop.
}

Site on_wait_begin(const void* mutex) {
  if (t_in_hook) return Site{};
  for (auto it = t_held.rbegin(); it != t_held.rend(); ++it) {
    if (it->mutex == mutex) {
      const Site site = it->site;
      t_held.erase(std::next(it).base());
      return site;
    }
  }
  return Site{};
}

void on_wait_end(const void* mutex, const char* level, Site site) {
  if (t_in_hook) return;
  t_held.push_back(HeldEntry{mutex, level, site, /*via_try=*/false});
}

ReportHandler set_report_handler(ReportHandler handler) {
  // order: acq_rel — release publishes the handler to dispatch()'s
  // acquire load; acquire orders the returned previous handler.
  return g_handler.exchange(handler, std::memory_order_acq_rel);
}

std::size_t edges_observed() noexcept {
  // order: relaxed — statistics counter, read after the work is joined.
  return g_edges.load(std::memory_order_relaxed);
}

std::size_t cycles_reported() noexcept {
  // order: relaxed — statistics counter, read after the work is joined.
  return g_cycles.load(std::memory_order_relaxed);
}

void reset_for_test() {
  // lint: allow(raw-mutex) -- the detector's graph lock must be untracked
  std::lock_guard<std::mutex> graph_lock(g_graph_mu);
  if (g_graph != nullptr) g_graph->clear();
  // order: relaxed — test-only reset with no concurrent lock traffic.
  g_edges.store(0, std::memory_order_relaxed);
  g_cycles.store(0, std::memory_order_relaxed);
}

std::vector<CycleEdge> snapshot_edges() {
  std::vector<CycleEdge> edges;
  // lint: allow(raw-mutex) -- the detector's graph lock must be untracked
  std::lock_guard<std::mutex> graph_lock(g_graph_mu);
  if (g_graph == nullptr) return edges;
  for (auto& [name, node] : *g_graph) {
    for (const GraphEdge& edge : node.out) {
      edges.push_back(CycleEdge{node.name.c_str(), edge.to->name.c_str(),
                                edge.holder_site, edge.acquire_site});
    }
  }
  return edges;
}

namespace {

// SARBP_LOCKDEP_DUMP=1 prints the observed acquires-after edge set when
// the process exits — the ground truth for tools/lock_hierarchy.py.
struct DumpAtExit {
  DumpAtExit() {
    if (const char* flag = std::getenv("SARBP_LOCKDEP_DUMP");
        flag != nullptr && flag[0] != '\0' && flag[0] != '0') {
      std::atexit([] {
        const std::vector<CycleEdge> edges = snapshot_edges();
        std::fprintf(stderr, "[sarbp lockdep] %zu acquires-after edges:\n",
                     edges.size());
        for (const CycleEdge& edge : edges) {
          std::fprintf(stderr, "  %s -> %s  (held at %s:%d, acquired at %s:%d)\n",
                       edge.from, edge.to, edge.holder_site.file,
                       edge.holder_site.line, edge.acquire_site.file,
                       edge.acquire_site.line);
        }
      });
    }
  }
};
DumpAtExit g_dump_at_exit;

}  // namespace

}  // namespace sarbp::lockdep

#endif  // SARBP_DEADLOCK_CHECK
