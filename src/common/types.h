// Core scalar and complex types shared by every sarbp module.
#pragma once

#include <complex>
#include <cstddef>
#include <cstdint>

namespace sarbp {

/// Single-precision complex sample: the working type of the backprojection
/// inner loop (the paper's ASR makes an all-single-precision loop accurate
/// enough; see §3.5).
using CFloat = std::complex<float>;

/// Double-precision complex: used for reference computations and for the
/// accuracy-sensitive ASR pre-computation step.
using CDouble = std::complex<double>;

/// Signed index type used for image/pulse coordinates. Signed so that loop
/// arithmetic (offsets from block centres, halo widths) stays natural.
using Index = std::ptrdiff_t;

/// Cache-line size assumed for alignment and false-sharing avoidance.
inline constexpr std::size_t kCacheLine = 64;

/// SIMD register width in bytes we align hot arrays to (AVX-512 friendly).
inline constexpr std::size_t kSimdAlign = 64;

}  // namespace sarbp
