#include "common/rng.h"

#include <cmath>
#include <numbers>

namespace sarbp {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

// splitmix64: seeds the xoshiro state from a single 64-bit value.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  // All-zero state is invalid for xoshiro; splitmix64 cannot produce four
  // zeros from any seed, but keep the guard explicit.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 random mantissa bits -> [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller; u1 is kept away from 0 so log() is finite.
  double u1 = uniform();
  if (u1 < 0x1.0p-60) u1 = 0x1.0p-60;
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

std::uint64_t Rng::below(std::uint64_t n) noexcept {
  // Lemire's nearly-divisionless bounded draw; bias is negligible for the
  // simulation use cases but we still reject the short range.
  if (n == 0) return 0;
  const std::uint64_t threshold = (0 - n) % n;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % n;
  }
}

Rng Rng::split() noexcept {
  // The child inherits the current state (good for up to 2^128 draws);
  // *this jumps 2^128 steps ahead, so successive split() calls hand out
  // pairwise-disjoint substreams.
  static constexpr std::uint64_t kJump[] = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
      0x39abdc4529b1661cULL};
  Rng child = *this;
  child.has_cached_normal_ = false;
  std::uint64_t t[4] = {0, 0, 0, 0};
  for (std::uint64_t jump : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (jump & (1ULL << b)) {
        t[0] ^= s_[0];
        t[1] ^= s_[1];
        t[2] ^= s_[2];
        t[3] ^= s_[3];
      }
      next();
    }
  }
  for (int i = 0; i < 4; ++i) s_[i] = t[i];
  has_cached_normal_ = false;
  return child;
}

}  // namespace sarbp
