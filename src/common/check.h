// Lightweight precondition checking (Core Guidelines I.6/E.12 style:
// functions, not macros; throw on contract violation).
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace sarbp {

/// Thrown when a sarbp API precondition is violated.
class PreconditionError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Verifies a caller-supplied precondition; throws PreconditionError with
/// the call site encoded when it does not hold. Used at public API
/// boundaries only — hot inner loops rely on the callers having validated.
inline void ensure(bool condition, const std::string& what,
                   std::source_location loc = std::source_location::current()) {
  if (!condition) {
    throw PreconditionError(std::string(loc.file_name()) + ":" +
                            std::to_string(loc.line()) + ": " + what);
  }
}

}  // namespace sarbp
