// Runtime lock-order cycle detector (SARBP_DEADLOCK_CHECK builds only).
//
// The third layer of the deadlock-freedom verification pass (DESIGN.md
// §14): the annotated sarbp::Mutex / MutexLock / CondVar wrappers
// (src/common/thread_annotations.h) call these hooks on every
// acquisition, release and condition wait, and the detector maintains
//
//   - a per-thread stack of currently held locks (with the level name
//     declared via SARBP_LOCK_LEVEL and the acquisition site captured
//     from __builtin_FILE/__builtin_LINE at the call), and
//   - a global acquires-after edge graph keyed by LEVEL, not instance:
//     blocking-acquiring B while holding A records the edge A -> B the
//     first time that pair is observed.
//
// On each NEW edge a DFS over the existing graph looks for a path back
// from B to A; finding one means two code paths acquire some set of
// levels in contradictory orders — a potential deadlock even if this
// particular run never interleaved into one. The full cycle, with the
// acquisition sites that first witnessed each edge, goes to the report
// handler (default: stderr + `deadlock.cycles` / `deadlock.edges` obs
// metrics, non-fatal so a full test run surfaces every distinct cycle).
//
// Rules the detector encodes (rationale in DESIGN.md §14):
//   - try_lock successes record NO incoming edge (a try never blocks, so
//     it cannot close a wait cycle) but ARE pushed on the held stack —
//     blocking-acquiring another lock while holding a try-acquired one is
//     a real ordering constraint and is recorded.
//   - same-level blocking nesting is a self-edge and reports immediately:
//     same-rank nesting must go through try_lock or a finer level split.
//   - unleveled mutexes (no SARBP_LOCK_LEVEL) are invisible to the graph;
//     the `lock-level` lint rule keeps src/ free of them.
//   - CondVar waits pop the mutex for the wait's duration and re-push on
//     wake without recording edges (the held set is unchanged from the
//     original acquisition).
//
// Everything here is compiled only when SARBP_DEADLOCK_CHECK=1; release
// builds contain none of it.
#pragma once

#include <cstddef>
#include <vector>

namespace sarbp::lockdep {

/// An acquisition site, captured from the caller of Mutex::lock /
/// MutexLock at zero syntactic cost via __builtin_FILE/__builtin_LINE
/// default arguments.
struct Site {
  const char* file = "?";
  int line = 0;
};

/// One edge of a reported cycle: `from` was held (acquired at
/// holder_site) while `to` was blocking-acquired (at acquire_site) — the
/// sites are from the first observation of the edge.
struct CycleEdge {
  const char* from = nullptr;
  const char* to = nullptr;
  Site holder_site;
  Site acquire_site;
};

/// A lock-order cycle: edges[i].to == edges[i+1].from, wrapping around.
struct CycleReport {
  std::vector<CycleEdge> edges;
};

/// Called before blocking on the underlying mutex: records ordering edges
/// from every held leveled lock to `level` and runs cycle detection on
/// each new edge — so a true deadlock still gets its report printed
/// before the thread wedges. `level` may be nullptr (unleveled).
void on_lock_attempt(const void* mutex, const char* level, Site site);

/// Called after the underlying mutex is held: pushes onto the per-thread
/// held stack. `via_try` marks try_lock successes (no edges were
/// recorded for them).
void on_lock_acquired(const void* mutex, const char* level, Site site,
                      bool via_try);

/// Called before the underlying mutex is released: pops the (most recent)
/// held-stack entry for `mutex`.
void on_unlock(const void* mutex);

/// CondVar wait protocol: `on_wait_begin` pops the entry for `mutex` and
/// returns its original acquisition site; `on_wait_end` re-pushes it with
/// that site after the wait reacquires, recording no edges.
Site on_wait_begin(const void* mutex);
void on_wait_end(const void* mutex, const char* level, Site site);

/// Cycle reports go to the installed handler. Passing nullptr restores
/// the default (stderr + deadlock.* obs metrics). Returns the previous
/// handler. The handler runs with hook re-entry suppressed on the calling
/// thread, so it may take tracked locks (e.g. the obs registry) freely.
using ReportHandler = void (*)(const CycleReport&);
ReportHandler set_report_handler(ReportHandler handler);

/// Totals since start (or the last reset): distinct level-pair edges
/// observed, and cycles reported. A clean full-suite run asserts
/// cycles_reported() == 0.
std::size_t edges_observed() noexcept;
std::size_t cycles_reported() noexcept;

/// Test-only: drops the edge graph and zeroes the counters so fixtures
/// that seed deliberate inversions don't leak edges into later tests.
/// Callers must hold no tracked locks.
void reset_for_test();

/// Copies the current acquires-after edge set (with first-observation
/// sites). Tests assert seeded edges; setting SARBP_LOCKDEP_DUMP=1 in the
/// environment prints the set at process exit — the raw material for
/// keeping tools/lock_hierarchy.py honest.
std::vector<CycleEdge> snapshot_edges();

}  // namespace sarbp::lockdep
