#include "common/snr.h"

#include <cmath>
#include <limits>

#include "common/check.h"

namespace sarbp {
namespace {

template <class M, class R>
double snr_db_impl(std::span<const M> measured, std::span<const R> reference) {
  ensure(measured.size() == reference.size(), "snr_db: size mismatch");
  // Accumulate in double regardless of input precision; the error power can
  // be ~1e-11 of the signal power and must not round away.
  double signal = 0.0;
  double noise = 0.0;
  for (std::size_t i = 0; i < measured.size(); ++i) {
    const double rr = static_cast<double>(reference[i].real());
    const double ri = static_cast<double>(reference[i].imag());
    const double er = static_cast<double>(measured[i].real()) - rr;
    const double ei = static_cast<double>(measured[i].imag()) - ri;
    signal += rr * rr + ri * ri;
    noise += er * er + ei * ei;
  }
  // All-zero measured *and* reference: neither "perfect match" (+inf) nor
  // "pure noise" (-inf) is meaningful — the ratio 0/0 is undefined.
  if (signal == 0.0 && noise == 0.0) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  if (noise == 0.0) return std::numeric_limits<double>::infinity();
  if (signal == 0.0) return -std::numeric_limits<double>::infinity();
  return 10.0 * std::log10(signal / noise);
}

}  // namespace

double snr_db(std::span<const CFloat> measured, std::span<const CDouble> reference) {
  return snr_db_impl(measured, reference);
}

double snr_db(std::span<const CFloat> measured, std::span<const CFloat> reference) {
  return snr_db_impl(measured, reference);
}

double snr_db(const Grid2D<CFloat>& measured, const Grid2D<CDouble>& reference) {
  return snr_db_impl(measured.flat(), reference.flat());
}

double snr_db(const Grid2D<CFloat>& measured, const Grid2D<CFloat>& reference) {
  return snr_db_impl(measured.flat(), reference.flat());
}

}  // namespace sarbp
