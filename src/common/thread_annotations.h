// Compile-time thread-safety capability layer + lock hierarchy.
//
// Wraps Clang's -Wthread-safety capability analysis (the annotations of
// "C/C++ Thread Safety Analysis", Hutchins et al., CGO 2014) behind
// SARBP_* macros, plus `sarbp::Mutex` / `sarbp::MutexLock` /
// `sarbp::CondVar` — annotated drop-in equivalents of std::mutex,
// std::unique_lock and std::condition_variable. Every mutex-protected
// invariant in the concurrency core (BoundedQueue, TaskGroup,
// TileExecutor, the job service, the plan cache, the obs registry, the
// cluster mailboxes) is declared with these macros, so a lock-discipline
// violation is a compile error under `-DSARBP_THREAD_SAFETY=ON` with
// Clang instead of a lucky TSan catch at runtime.
//
// Project rule (enforced by tools/sarbp_lint.py): `std::mutex` and
// `std::condition_variable` are spelled ONLY in this header (and in the
// runtime lock-order detector it feeds, src/common/deadlock.cpp).
// Everything else takes sarbp::Mutex, so every guarded field is
// annotatable.
//
// Lock hierarchy (DESIGN.md §14): every long-lived Mutex member declares
// a named level with SARBP_LOCK_LEVEL("module.name"); the level order is
// the single repo-wide registry in tools/lock_hierarchy.py, enforced
// three ways:
//   - statically, by SARBP_ACQUIRED_BEFORE/AFTER edges checked under
//     Clang's -Wthread-safety-beta in the static-analysis CI job;
//   - by the `lock-level` rule in tools/sarbp_lint.py (every Mutex member
//     declares a level, every level + edge matches the registry);
//   - at runtime, by the SARBP_DEADLOCK_CHECK lock-order tracker
//     (src/common/deadlock.h): per-thread held-lock stacks, a global
//     acquires-after edge graph, DFS cycle detection on each new edge.
// When SARBP_DEADLOCK_CHECK is off (the default), levels compile away
// and the wrappers are the plain std primitives with zero overhead.
//
// Conventions (DESIGN.md §10):
//   - every field protected by a mutex carries SARBP_GUARDED_BY(mutex_);
//   - `*_locked()` helpers that assume the caller holds the lock carry
//     SARBP_REQUIRES(mutex_);
//   - condition waits are written as explicit while-loops over guarded
//     state (never predicate lambdas), so the analysis sees every access;
//   - the rare deliberate escape hatch uses SARBP_NO_THREAD_SAFETY_ANALYSIS
//     with a written rationale.
//
// Under GCC (or Clang without the option) every macro expands to nothing
// and the wrappers compile to the underlying std primitives.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#if !defined(SARBP_DEADLOCK_CHECK)
#define SARBP_DEADLOCK_CHECK 0
#endif
#if SARBP_DEADLOCK_CHECK
#include "common/deadlock.h"
#endif

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define SARBP_TS_ATTR(x) __attribute__((x))
#endif
#endif
#ifndef SARBP_TS_ATTR
#define SARBP_TS_ATTR(x)  // no-op outside Clang
#endif

/// Type is a lockable capability ("mutex" names the kind in diagnostics).
#define SARBP_CAPABILITY(x) SARBP_TS_ATTR(capability(x))
/// RAII type that acquires a capability in its constructor and releases it
/// in its destructor.
#define SARBP_SCOPED_CAPABILITY SARBP_TS_ATTR(scoped_lockable)
/// Field may only be read/written while holding `x`.
#define SARBP_GUARDED_BY(x) SARBP_TS_ATTR(guarded_by(x))
/// Pointee may only be dereferenced while holding `x`.
#define SARBP_PT_GUARDED_BY(x) SARBP_TS_ATTR(pt_guarded_by(x))
/// Function requires the listed capabilities to be held on entry (and
/// still held on exit).
#define SARBP_REQUIRES(...) \
  SARBP_TS_ATTR(requires_capability(__VA_ARGS__))
#define SARBP_REQUIRES_SHARED(...) \
  SARBP_TS_ATTR(requires_shared_capability(__VA_ARGS__))
/// Function acquires the capability (held on exit, not on entry).
#define SARBP_ACQUIRE(...) SARBP_TS_ATTR(acquire_capability(__VA_ARGS__))
#define SARBP_ACQUIRE_SHARED(...) \
  SARBP_TS_ATTR(acquire_shared_capability(__VA_ARGS__))
/// Function releases the capability (held on entry, not on exit).
#define SARBP_RELEASE(...) SARBP_TS_ATTR(release_capability(__VA_ARGS__))
#define SARBP_RELEASE_SHARED(...) \
  SARBP_TS_ATTR(release_shared_capability(__VA_ARGS__))
/// Function acquires the capability iff it returns `b`.
#define SARBP_TRY_ACQUIRE(b, ...) \
  SARBP_TS_ATTR(try_acquire_capability(b, __VA_ARGS__))
/// Caller must NOT hold the listed capabilities (deadlock prevention).
#define SARBP_EXCLUDES(...) SARBP_TS_ATTR(locks_excluded(__VA_ARGS__))
/// Function returns a reference to the capability guarding its result.
#define SARBP_RETURN_CAPABILITY(x) SARBP_TS_ATTR(lock_returned(x))
/// Escape hatch: disable the analysis for one function. Every use carries
/// a comment explaining why the discipline cannot be expressed.
#define SARBP_NO_THREAD_SAFETY_ANALYSIS \
  SARBP_TS_ATTR(no_thread_safety_analysis)

/// Static lock-order edges on a Mutex member: this mutex is acquired
/// before (outer to) / after (inner to) the listed mutexes. Checked by
/// Clang under -Wthread-safety-beta (the acquired_before/after attributes
/// are beta-only); the same edges must appear in tools/lock_hierarchy.py,
/// which the `lock-level` lint rule cross-checks against the registry's
/// topological order.
#define SARBP_ACQUIRED_BEFORE(...) SARBP_TS_ATTR(acquired_before(__VA_ARGS__))
#define SARBP_ACQUIRED_AFTER(...) SARBP_TS_ATTR(acquired_after(__VA_ARGS__))

namespace sarbp {

/// A named rank in the repo-wide lock hierarchy (tools/lock_hierarchy.py).
/// Construct via SARBP_LOCK_LEVEL("module.name") at the Mutex member
/// declaration. The name is the identity: the runtime detector keys its
/// acquires-after edge graph by level, not by instance, so two instances
/// of the same level blocking-nested report a self-cycle (same-level
/// nesting must use try_lock, which records no ordering edges).
struct LockLevel {
  const char* name;
};

}  // namespace sarbp

/// Declares the hierarchy level of a Mutex member:
///   Mutex mutex_{SARBP_LOCK_LEVEL("service.job")};
/// The `lock-level` lint rule requires one on every Mutex declaration in
/// src/ (suppress intentionally-unleveled mutexes with
/// `// lint: allow(lock-level) -- rationale`). Costs nothing unless
/// SARBP_DEADLOCK_CHECK is on.
#define SARBP_LOCK_LEVEL(name) (::sarbp::LockLevel{name})

namespace sarbp {

class CondVar;

/// Annotated mutual-exclusion capability. Same semantics and cost as the
/// std::mutex it wraps; the annotation is what lets Clang check that every
/// SARBP_GUARDED_BY field is only touched under it. Under
/// SARBP_DEADLOCK_CHECK each acquisition also feeds the lock-order cycle
/// detector (src/common/deadlock.h) with this mutex's declared level and
/// the call site.
class SARBP_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  explicit Mutex([[maybe_unused]] LockLevel level) noexcept {
#if SARBP_DEADLOCK_CHECK
    level_ = level.name;
#endif
  }
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

#if SARBP_DEADLOCK_CHECK
  void lock(const char* file = __builtin_FILE(),
            int line = __builtin_LINE()) SARBP_ACQUIRE() {
    lockdep::on_lock_attempt(this, level_, {file, line});
    m_.lock();
    lockdep::on_lock_acquired(this, level_, {file, line}, /*via_try=*/false);
  }
  void unlock() SARBP_RELEASE() {
    lockdep::on_unlock(this);
    m_.unlock();
  }
  bool try_lock(const char* file = __builtin_FILE(),
                int line = __builtin_LINE()) SARBP_TRY_ACQUIRE(true) {
    const bool ok = m_.try_lock();
    if (ok) {
      // try_lock never blocks, so a successful try-acquisition cannot
      // close a wait cycle: it is pushed on the held stack (edges FROM it
      // to later blocking acquisitions are real deadlock risks) but no
      // edge TO it is recorded.
      lockdep::on_lock_acquired(this, level_, {file, line}, /*via_try=*/true);
    }
    return ok;
  }
#else
  void lock() SARBP_ACQUIRE() { m_.lock(); }
  void unlock() SARBP_RELEASE() { m_.unlock(); }
  bool try_lock() SARBP_TRY_ACQUIRE(true) { return m_.try_lock(); }
#endif

 private:
  friend class MutexLock;
  friend class CondVar;
  std::mutex m_;
#if SARBP_DEADLOCK_CHECK
  const char* level_ = nullptr;  // nullptr = unleveled: held but unchecked
#endif
};

/// RAII scope lock over a Mutex (the annotated std::unique_lock). Supports
/// early unlock/relock; CondVar waits take it by reference.
class SARBP_SCOPED_CAPABILITY MutexLock {
 public:
#if SARBP_DEADLOCK_CHECK
  explicit MutexLock(Mutex& mutex, const char* file = __builtin_FILE(),
                     int line = __builtin_LINE()) SARBP_ACQUIRE(mutex)
      : mutex_(&mutex), lock_(mutex.m_, std::defer_lock) {
    lockdep::on_lock_attempt(mutex_, mutex_->level_, {file, line});
    lock_.lock();
    lockdep::on_lock_acquired(mutex_, mutex_->level_, {file, line},
                              /*via_try=*/false);
  }
  ~MutexLock() SARBP_RELEASE() {
    if (lock_.owns_lock()) lockdep::on_unlock(mutex_);
  }
  void unlock() SARBP_RELEASE() {
    lockdep::on_unlock(mutex_);
    lock_.unlock();
  }
  void lock(const char* file = __builtin_FILE(),
            int line = __builtin_LINE()) SARBP_ACQUIRE() {
    lockdep::on_lock_attempt(mutex_, mutex_->level_, {file, line});
    lock_.lock();
    lockdep::on_lock_acquired(mutex_, mutex_->level_, {file, line},
                              /*via_try=*/false);
  }
#else
  explicit MutexLock(Mutex& mutex) SARBP_ACQUIRE(mutex) : lock_(mutex.m_) {}
  ~MutexLock() SARBP_RELEASE() = default;

  void unlock() SARBP_RELEASE() { lock_.unlock(); }
  void lock() SARBP_ACQUIRE() { lock_.lock(); }
#endif

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
#if SARBP_DEADLOCK_CHECK
  Mutex* mutex_;
#endif
  std::unique_lock<std::mutex> lock_;
};

/// Condition variable usable with MutexLock. The analysis cannot model the
/// release-while-waiting, which is fine: the capability is held before and
/// after every wait, exactly what guarded accesses around it need. Waits
/// deliberately take no predicate — callers write explicit while-loops
/// over guarded state so the analysis sees each access (DESIGN.md §10).
/// Under SARBP_DEADLOCK_CHECK the wait pops the mutex off the per-thread
/// held stack for its duration (a wait releases the lock, so it must not
/// contribute ordering edges) and re-pushes it on wake without recording
/// edges (the held set is unchanged from the original acquisition).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

#if SARBP_DEADLOCK_CHECK
  void wait(MutexLock& lock) {
    const lockdep::Site site = lockdep::on_wait_begin(lock.mutex_);
    cv_.wait(lock.lock_);
    lockdep::on_wait_end(lock.mutex_, lock.mutex_->level_, site);
  }

  template <class Clock, class Duration>
  std::cv_status wait_until(
      MutexLock& lock,
      const std::chrono::time_point<Clock, Duration>& deadline) {
    const lockdep::Site site = lockdep::on_wait_begin(lock.mutex_);
    const std::cv_status status = cv_.wait_until(lock.lock_, deadline);
    lockdep::on_wait_end(lock.mutex_, lock.mutex_->level_, site);
    return status;
  }

  template <class Rep, class Period>
  std::cv_status wait_for(MutexLock& lock,
                          const std::chrono::duration<Rep, Period>& timeout) {
    const lockdep::Site site = lockdep::on_wait_begin(lock.mutex_);
    const std::cv_status status = cv_.wait_for(lock.lock_, timeout);
    lockdep::on_wait_end(lock.mutex_, lock.mutex_->level_, site);
    return status;
  }
#else
  void wait(MutexLock& lock) { cv_.wait(lock.lock_); }

  template <class Clock, class Duration>
  std::cv_status wait_until(
      MutexLock& lock,
      const std::chrono::time_point<Clock, Duration>& deadline) {
    return cv_.wait_until(lock.lock_, deadline);
  }

  template <class Rep, class Period>
  std::cv_status wait_for(MutexLock& lock,
                          const std::chrono::duration<Rep, Period>& timeout) {
    return cv_.wait_for(lock.lock_, timeout);
  }
#endif

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace sarbp
