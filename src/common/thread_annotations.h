// Compile-time thread-safety capability layer.
//
// Wraps Clang's -Wthread-safety capability analysis (the annotations of
// "C/C++ Thread Safety Analysis", Hutchins et al., CGO 2014) behind
// SARBP_* macros, plus `sarbp::Mutex` / `sarbp::MutexLock` /
// `sarbp::CondVar` — annotated drop-in equivalents of std::mutex,
// std::unique_lock and std::condition_variable. Every mutex-protected
// invariant in the concurrency core (BoundedQueue, TaskGroup,
// TileExecutor, the job service, the plan cache, the obs registry, the
// cluster mailboxes) is declared with these macros, so a lock-discipline
// violation is a compile error under `-DSARBP_THREAD_SAFETY=ON` with
// Clang instead of a lucky TSan catch at runtime.
//
// Project rule (enforced by tools/sarbp_lint.py): `std::mutex` and
// `std::condition_variable` are spelled ONLY in this header. Everything
// else takes sarbp::Mutex, so every guarded field is annotatable.
//
// Conventions (DESIGN.md §10):
//   - every field protected by a mutex carries SARBP_GUARDED_BY(mutex_);
//   - `*_locked()` helpers that assume the caller holds the lock carry
//     SARBP_REQUIRES(mutex_);
//   - condition waits are written as explicit while-loops over guarded
//     state (never predicate lambdas), so the analysis sees every access;
//   - the rare deliberate escape hatch uses SARBP_NO_THREAD_SAFETY_ANALYSIS
//     with a written rationale.
//
// Under GCC (or Clang without the option) every macro expands to nothing
// and the wrappers compile to the underlying std primitives with zero
// overhead.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define SARBP_TS_ATTR(x) __attribute__((x))
#endif
#endif
#ifndef SARBP_TS_ATTR
#define SARBP_TS_ATTR(x)  // no-op outside Clang
#endif

/// Type is a lockable capability ("mutex" names the kind in diagnostics).
#define SARBP_CAPABILITY(x) SARBP_TS_ATTR(capability(x))
/// RAII type that acquires a capability in its constructor and releases it
/// in its destructor.
#define SARBP_SCOPED_CAPABILITY SARBP_TS_ATTR(scoped_lockable)
/// Field may only be read/written while holding `x`.
#define SARBP_GUARDED_BY(x) SARBP_TS_ATTR(guarded_by(x))
/// Pointee may only be dereferenced while holding `x`.
#define SARBP_PT_GUARDED_BY(x) SARBP_TS_ATTR(pt_guarded_by(x))
/// Function requires the listed capabilities to be held on entry (and
/// still held on exit).
#define SARBP_REQUIRES(...) \
  SARBP_TS_ATTR(requires_capability(__VA_ARGS__))
#define SARBP_REQUIRES_SHARED(...) \
  SARBP_TS_ATTR(requires_shared_capability(__VA_ARGS__))
/// Function acquires the capability (held on exit, not on entry).
#define SARBP_ACQUIRE(...) SARBP_TS_ATTR(acquire_capability(__VA_ARGS__))
#define SARBP_ACQUIRE_SHARED(...) \
  SARBP_TS_ATTR(acquire_shared_capability(__VA_ARGS__))
/// Function releases the capability (held on entry, not on exit).
#define SARBP_RELEASE(...) SARBP_TS_ATTR(release_capability(__VA_ARGS__))
#define SARBP_RELEASE_SHARED(...) \
  SARBP_TS_ATTR(release_shared_capability(__VA_ARGS__))
/// Function acquires the capability iff it returns `b`.
#define SARBP_TRY_ACQUIRE(b, ...) \
  SARBP_TS_ATTR(try_acquire_capability(b, __VA_ARGS__))
/// Caller must NOT hold the listed capabilities (deadlock prevention).
#define SARBP_EXCLUDES(...) SARBP_TS_ATTR(locks_excluded(__VA_ARGS__))
/// Function returns a reference to the capability guarding its result.
#define SARBP_RETURN_CAPABILITY(x) SARBP_TS_ATTR(lock_returned(x))
/// Escape hatch: disable the analysis for one function. Every use carries
/// a comment explaining why the discipline cannot be expressed.
#define SARBP_NO_THREAD_SAFETY_ANALYSIS \
  SARBP_TS_ATTR(no_thread_safety_analysis)

namespace sarbp {

class CondVar;

/// Annotated mutual-exclusion capability. Same semantics and cost as the
/// std::mutex it wraps; the annotation is what lets Clang check that every
/// SARBP_GUARDED_BY field is only touched under it.
class SARBP_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() SARBP_ACQUIRE() { m_.lock(); }
  void unlock() SARBP_RELEASE() { m_.unlock(); }
  bool try_lock() SARBP_TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  friend class MutexLock;
  friend class CondVar;
  std::mutex m_;
};

/// RAII scope lock over a Mutex (the annotated std::unique_lock). Supports
/// early unlock/relock; CondVar waits take it by reference.
class SARBP_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) SARBP_ACQUIRE(mutex)
      : lock_(mutex.m_) {}
  ~MutexLock() SARBP_RELEASE() = default;

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void unlock() SARBP_RELEASE() { lock_.unlock(); }
  void lock() SARBP_ACQUIRE() { lock_.lock(); }

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// Condition variable usable with MutexLock. The analysis cannot model the
/// release-while-waiting, which is fine: the capability is held before and
/// after every wait, exactly what guarded accesses around it need. Waits
/// deliberately take no predicate — callers write explicit while-loops
/// over guarded state so the analysis sees each access (DESIGN.md §10).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(MutexLock& lock) { cv_.wait(lock.lock_); }

  template <class Clock, class Duration>
  std::cv_status wait_until(
      MutexLock& lock,
      const std::chrono::time_point<Clock, Duration>& deadline) {
    return cv_.wait_until(lock.lock_, deadline);
  }

  template <class Rep, class Period>
  std::cv_status wait_for(MutexLock& lock,
                          const std::chrono::duration<Rep, Period>& timeout) {
    return cv_.wait_for(lock.lock_, timeout);
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace sarbp
