// Bounded concurrent FIFO queue.
//
// The paper's pipeline synchronizes I/O threads with compute threads
// "through concurrent bounded queues implemented with Pthread condition
// variables" (§4.1). This is the C++ equivalent: a mutex + two condition
// variables, blocking push/pop, plus a close() protocol so consumers drain
// and exit cleanly at end-of-stream.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "common/check.h"

namespace sarbp {

template <class T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {
    ensure(capacity > 0, "BoundedQueue capacity must be positive");
  }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks while full. Returns false if the queue was closed (item dropped).
  bool push(T item) {
    std::unique_lock lock(mutex_);
    not_full_.wait(lock, [&] { return items_.size() < capacity_ || closed_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push. Returns false when full or closed.
  bool try_push(T item) {
    {
      std::lock_guard lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while empty. Returns nullopt once the queue is closed *and*
  /// drained — the end-of-stream signal for consumers.
  std::optional<T> pop() {
    std::unique_lock lock(mutex_);
    not_empty_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    std::optional<T> out;
    {
      std::lock_guard lock(mutex_);
      if (items_.empty()) return std::nullopt;
      out = std::move(items_.front());
      items_.pop_front();
    }
    not_full_.notify_one();
    return out;
  }

  /// Signals end-of-stream: unblocks every waiter; subsequent pushes fail,
  /// pops drain remaining items then return nullopt.
  void close() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard lock(mutex_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock(mutex_);
    return items_.size();
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace sarbp
