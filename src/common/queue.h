// Bounded concurrent FIFO queue.
//
// The paper's pipeline synchronizes I/O threads with compute threads
// "through concurrent bounded queues implemented with Pthread condition
// variables" (§4.1). This is the C++ equivalent: a mutex + two condition
// variables, blocking push/pop, plus a close() protocol so consumers drain
// and exit cleanly at end-of-stream.
//
// Shutdown protocol (see DESIGN.md "Shutdown protocol"): close() is
// idempotent and unblocks every waiter; after close(), push fails and pop
// drains the backlog before signalling end-of-stream with nullopt. A stage
// that stops consuming a queue early MUST close it, or an upstream
// producer blocked on a full queue never wakes.
//
// Thread-safety discipline: `items_`/`closed_` are SARBP_GUARDED_BY the
// queue mutex and every wait is an explicit while-loop over that guarded
// state, so Clang's -Wthread-safety verifies the locking at compile time
// (DESIGN.md §10). Push results are [[nodiscard]]: a dropped item on
// close/timeout is a branch every caller must handle.
//
// Constructing with a name registers depth/watermark gauges and
// pushed/popped/blocked/close counters under "queue.<name>.*" in the
// global obs registry; unnamed queues carry no instrumentation cost.
#pragma once

#include <chrono>
#include <cstddef>
#include <deque>
#include <optional>
#include <string>
#include <utility>

#include "common/check.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"

namespace sarbp {

template <class T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity, const char* name = nullptr,
                        obs::Registry* metrics = nullptr)
      : capacity_(capacity) {
    ensure(capacity > 0, "BoundedQueue capacity must be positive");
    if constexpr (obs::kEnabled) {
      if (name != nullptr) {
        const std::string prefix = std::string("queue.") + name + ".";
        auto& reg = metrics != nullptr ? *metrics : obs::registry();
        depth_ = &reg.gauge(prefix + "depth");
        pushed_ = &reg.counter(prefix + "pushed");
        popped_ = &reg.counter(prefix + "popped");
        blocked_push_ = &reg.counter(prefix + "blocked_push");
        blocked_pop_ = &reg.counter(prefix + "blocked_pop");
        close_events_ = &reg.counter(prefix + "close");
      }
    }
  }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks while full. Returns false if the queue was closed (item dropped).
  [[nodiscard]] bool push(T item) {
    MutexLock lock(mutex_);
    if (items_.size() >= capacity_ && !closed_) {
      if (blocked_push_) blocked_push_->add();
      while (items_.size() >= capacity_ && !closed_) not_full_.wait(lock);
    }
    if (closed_) return false;
    items_.push_back(std::move(item));
    if (depth_) depth_->set(static_cast<std::int64_t>(items_.size()));
    if (pushed_) pushed_->add();
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Deadline-aware push: waits up to `timeout` for space. Returns false on
  /// timeout (item dropped, queue still full) or once the queue is closed —
  /// whichever comes first. A close() during the wait wins over the
  /// deadline: the call returns false immediately, like push().
  template <class Rep, class Period>
  [[nodiscard]] bool try_push_for(T item,
                                  std::chrono::duration<Rep, Period> timeout) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    MutexLock lock(mutex_);
    if (items_.size() >= capacity_ && !closed_) {
      if (blocked_push_) blocked_push_->add();
      while (items_.size() >= capacity_ && !closed_) {
        if (not_full_.wait_until(lock, deadline) == std::cv_status::timeout &&
            items_.size() >= capacity_ && !closed_) {
          return false;  // deadline passed, still full
        }
      }
    }
    if (closed_) return false;
    items_.push_back(std::move(item));
    if (depth_) depth_->set(static_cast<std::int64_t>(items_.size()));
    if (pushed_) pushed_->add();
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push. Returns false when full or closed.
  [[nodiscard]] bool try_push(T item) {
    {
      MutexLock lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
      if (depth_) depth_->set(static_cast<std::int64_t>(items_.size()));
      if (pushed_) pushed_->add();
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while empty. Returns nullopt once the queue is closed *and*
  /// drained — the end-of-stream signal for consumers.
  std::optional<T> pop() {
    MutexLock lock(mutex_);
    if (items_.empty() && !closed_) {
      if (blocked_pop_) blocked_pop_->add();
      while (items_.empty() && !closed_) not_empty_.wait(lock);
    }
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    if (depth_) depth_->set(static_cast<std::int64_t>(items_.size()));
    if (popped_) popped_->add();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Deadline-aware pop: waits up to `timeout` for an item. Returns nullopt
  /// on timeout *or* end-of-stream (closed and drained); callers that need
  /// to tell the two apart check closed() && size() == 0. Backlog items are
  /// still delivered after close(), exactly like pop().
  template <class Rep, class Period>
  std::optional<T> try_pop_for(std::chrono::duration<Rep, Period> timeout) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    MutexLock lock(mutex_);
    if (items_.empty() && !closed_) {
      if (blocked_pop_) blocked_pop_->add();
      while (items_.empty() && !closed_) {
        if (not_empty_.wait_until(lock, deadline) == std::cv_status::timeout &&
            items_.empty() && !closed_) {
          return std::nullopt;  // deadline passed, still empty
        }
      }
    }
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    if (depth_) depth_->set(static_cast<std::int64_t>(items_.size()));
    if (popped_) popped_->add();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    std::optional<T> out;
    {
      MutexLock lock(mutex_);
      if (items_.empty()) return std::nullopt;
      out = std::move(items_.front());
      items_.pop_front();
      if (depth_) depth_->set(static_cast<std::int64_t>(items_.size()));
      if (popped_) popped_->add();
    }
    not_full_.notify_one();
    return out;
  }

  /// Signals end-of-stream: unblocks every waiter; subsequent pushes fail,
  /// pops drain remaining items then return nullopt. Idempotent.
  void close() {
    {
      MutexLock lock(mutex_);
      if (closed_) return;
      closed_ = true;
      if (close_events_) close_events_->add();
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    MutexLock lock(mutex_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    MutexLock lock(mutex_);
    return items_.size();
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable Mutex mutex_{SARBP_LOCK_LEVEL("common.queue")};
  CondVar not_empty_;
  CondVar not_full_;
  std::deque<T> items_ SARBP_GUARDED_BY(mutex_);
  bool closed_ SARBP_GUARDED_BY(mutex_) = false;

  // Optional instrumentation (null when unnamed or compiled out). The
  // registry owns the metric objects; these stay valid for process life.
  obs::Gauge* depth_ = nullptr;
  obs::Counter* pushed_ = nullptr;
  obs::Counter* popped_ = nullptr;
  obs::Counter* blocked_push_ = nullptr;
  obs::Counter* blocked_pop_ = nullptr;
  obs::Counter* close_events_ = nullptr;
};

}  // namespace sarbp
