// Signal-to-noise ratio metric used throughout the evaluation.
//
// The paper (§5.2.1) measures accuracy as
//   SNR = 10 * log10( sum |reference|^2 / sum |measured - reference|^2 )
// against a full-double-precision reference; a 20 dB increment is one more
// correct decimal digit.
#pragma once

#include <span>

#include "common/grid2d.h"
#include "common/types.h"

namespace sarbp {

/// SNR in dB of `measured` against `reference` (element-wise complex).
/// Returns +infinity when the error is exactly zero.
double snr_db(std::span<const CFloat> measured, std::span<const CDouble> reference);

/// Overload for two single-precision signals (e.g. kernel-vs-kernel).
double snr_db(std::span<const CFloat> measured, std::span<const CFloat> reference);

/// Convenience overloads for images.
double snr_db(const Grid2D<CFloat>& measured, const Grid2D<CDouble>& reference);
double snr_db(const Grid2D<CFloat>& measured, const Grid2D<CFloat>& reference);

}  // namespace sarbp
