// Row-major 2D array with aligned storage — the container behind SAR
// images, correlation maps, and ASR coefficient tables.
#pragma once

#include <span>
#include <utility>

#include "common/aligned.h"
#include "common/check.h"
#include "common/types.h"

namespace sarbp {

template <class T>
class Grid2D {
 public:
  Grid2D() = default;

  /// width = fast (x) dimension, height = slow (y) dimension.
  Grid2D(Index width, Index height, T fill = T{})
      : width_(width), height_(height) {
    ensure(width >= 0 && height >= 0, "Grid2D dimensions must be non-negative");
    data_.assign(static_cast<std::size_t>(width * height), fill);
  }

  [[nodiscard]] Index width() const { return width_; }
  [[nodiscard]] Index height() const { return height_; }
  [[nodiscard]] Index size() const { return width_ * height_; }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  [[nodiscard]] T& at(Index x, Index y) {
    return data_[static_cast<std::size_t>(y * width_ + x)];
  }
  [[nodiscard]] const T& at(Index x, Index y) const {
    return data_[static_cast<std::size_t>(y * width_ + x)];
  }

  /// One image row as a contiguous span (used by SIMD kernels).
  [[nodiscard]] std::span<T> row(Index y) {
    return {data_.data() + y * width_, static_cast<std::size_t>(width_)};
  }
  [[nodiscard]] std::span<const T> row(Index y) const {
    return {data_.data() + y * width_, static_cast<std::size_t>(width_)};
  }

  [[nodiscard]] T* data() { return data_.data(); }
  [[nodiscard]] const T* data() const { return data_.data(); }
  [[nodiscard]] std::span<T> flat() { return {data_.data(), data_.size()}; }
  [[nodiscard]] std::span<const T> flat() const {
    return {data_.data(), data_.size()};
  }

  void fill(const T& value) { data_.assign(data_.size(), value); }

  [[nodiscard]] bool same_shape(const Grid2D& other) const {
    return width_ == other.width_ && height_ == other.height_;
  }

  friend bool operator==(const Grid2D& a, const Grid2D& b) {
    return a.width_ == b.width_ && a.height_ == b.height_ && a.data_ == b.data_;
  }

 private:
  Index width_ = 0;
  Index height_ = 0;
  AlignedVector<T> data_;
};

}  // namespace sarbp
