// Rectangular pixel region [x0, x0+width) x [y0, y0+height).
#pragma once

#include "common/types.h"

namespace sarbp {

struct Region {
  Index x0 = 0;
  Index y0 = 0;
  Index width = 0;
  Index height = 0;

  [[nodiscard]] Index pixels() const { return width * height; }
  [[nodiscard]] bool empty() const { return width <= 0 || height <= 0; }
  [[nodiscard]] bool contains(Index x, Index y) const {
    return x >= x0 && x < x0 + width && y >= y0 && y < y0 + height;
  }

  friend bool operator==(const Region&, const Region&) = default;
};

}  // namespace sarbp
