// Wall-clock timing utilities used by benchmarks and the pipeline's
// dynamic load balancer.
#pragma once

#include <ctime>

#include <chrono>
#include <cstddef>
#include <map>
#include <string>

namespace sarbp {

/// Monotonic stopwatch.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Per-thread CPU-time stopwatch: unaffected by time-slicing against other
/// threads, so simulated cluster ranks sharing cores still report their
/// true compute cost (the in-process MPI substitute relies on this).
class ThreadCpuTimer {
 public:
  ThreadCpuTimer() : start_(now()) {}

  void reset() { start_ = now(); }

  [[nodiscard]] double seconds() const { return now() - start_; }

 private:
  static double now() {
    timespec ts{};
    clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
    return static_cast<double>(ts.tv_sec) +
           1e-9 * static_cast<double>(ts.tv_nsec);
  }
  double start_;
};

/// Accumulates named time sections; used to produce the Fig. 7-style
/// execution-time breakdowns (sqrt / sin+cos / interpolation / other).
class SectionTimes {
 public:
  void add(const std::string& name, double seconds) { times_[name] += seconds; }

  [[nodiscard]] double get(const std::string& name) const {
    auto it = times_.find(name);
    return it == times_.end() ? 0.0 : it->second;
  }

  [[nodiscard]] double total() const {
    double t = 0.0;
    for (const auto& [name, secs] : times_) t += secs;
    return t;
  }

  [[nodiscard]] const std::map<std::string, double>& sections() const {
    return times_;
  }

  void clear() { times_.clear(); }

 private:
  std::map<std::string, double> times_;
};

/// RAII helper adding the scope's duration to a SectionTimes entry.
class ScopedSection {
 public:
  ScopedSection(SectionTimes& sink, std::string name)
      : sink_(sink), name_(std::move(name)) {}
  ScopedSection(const ScopedSection&) = delete;
  ScopedSection& operator=(const ScopedSection&) = delete;
  ~ScopedSection() { sink_.add(name_, timer_.seconds()); }

 private:
  SectionTimes& sink_;
  std::string name_;
  Timer timer_;
};

}  // namespace sarbp
