// Aligned allocation support for SIMD-hot arrays.
#pragma once

#include <cstdlib>
#include <limits>
#include <new>
#include <vector>

#include "common/types.h"

namespace sarbp {

/// Minimal C++17 aligned allocator. All hot arrays (pulse samples, image
/// tiles, ASR tables) are allocated with 64-byte alignment so that AVX-512
/// loads/stores never split cache lines.
template <class T, std::size_t Alignment = kSimdAlign>
class AlignedAllocator {
 public:
  using value_type = T;
  static constexpr std::align_val_t kAlign{Alignment};

  AlignedAllocator() noexcept = default;
  template <class U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  [[nodiscard]] T* allocate(std::size_t n) {
    if (n > std::numeric_limits<std::size_t>::max() / sizeof(T)) {
      throw std::bad_array_new_length();
    }
    return static_cast<T*>(::operator new(n * sizeof(T), kAlign));
  }

  void deallocate(T* p, std::size_t) noexcept { ::operator delete(p, kAlign); }

  template <class U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }
};

/// Vector with 64-byte-aligned storage.
template <class T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

}  // namespace sarbp
