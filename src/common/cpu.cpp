#include "common/cpu.h"

#include <omp.h>

#include <sstream>
#include <thread>

#include "common/check.h"

// This file is the one place outside the per-ISA kernel TUs allowed to
// inspect the compiled ISA macros: it *reports* the build baseline so the
// dispatcher and require_compiled_isa_supported() can compare it against
// the host. Everyone else asks CpuInfo / the bp dispatch API instead.

namespace sarbp {
namespace {

bool runtime_supports_avx2() {
#if defined(__x86_64__) || defined(__i386__)
  // x86-64-v3 class minus the exotica: everything the AVX2 kernel TU's
  // -march may emit. The compiler's cpu-supports runtime also checks
  // OS-enabled state (XGETBV), so "yes" means the vectors actually work.
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma") &&
         __builtin_cpu_supports("bmi2");
#else
  // Non-x86: no cpuid to ask; the build system only enables what the
  // target runs, so compiled == runtime.
  // lint: allow(isa-ifdef) -- compiled-baseline reporting is this file's job
#if defined(__AVX2__)
  return true;
#else
  return false;
#endif
#endif
}

bool runtime_supports_avx512f() {
#if defined(__x86_64__) || defined(__i386__)
  // x86-64-v4 class: the AVX-512 kernel TU uses F/BW/DQ/VL forms.
  return __builtin_cpu_supports("avx512f") &&
         __builtin_cpu_supports("avx512bw") &&
         __builtin_cpu_supports("avx512dq") &&
         __builtin_cpu_supports("avx512vl");
#else
  // lint: allow(isa-ifdef) -- compiled-baseline reporting is this file's job
#if defined(__AVX512F__)
  return true;
#else
  return false;
#endif
#endif
}

}  // namespace

CpuInfo cpu_info() {
  CpuInfo info;
  info.hardware_threads =
      static_cast<int>(std::thread::hardware_concurrency());
  if (info.hardware_threads <= 0) info.hardware_threads = 1;
  info.openmp_max_threads = omp_get_max_threads();
  // lint: allow(isa-ifdef) -- compiled-baseline reporting is this file's job
#if defined(__AVX512F__)
  info.compiled_avx512f = true;
#endif
  // lint: allow(isa-ifdef) -- compiled-baseline reporting is this file's job
#if defined(__AVX2__)
  info.compiled_avx2 = true;
#endif
#if SARBP_HAVE_KERNEL_AVX2
  info.kernel_avx2 = true;
#endif
#if SARBP_HAVE_KERNEL_AVX512
  info.kernel_avx512f = true;
#endif
  info.runtime_avx2 = runtime_supports_avx2();
  info.runtime_avx512f = runtime_supports_avx512f();
  info.avx2 = info.kernel_avx2 && info.runtime_avx2;
  info.avx512f = info.kernel_avx512f && info.runtime_avx512f;
  info.simd_width_floats = info.avx512f ? 16 : (info.avx2 ? 8 : 1);
  return info;
}

std::string cpu_summary() {
  const CpuInfo info = cpu_info();
  const auto isa_name = [](bool avx512, bool avx2) {
    return avx512 ? "avx512" : (avx2 ? "avx2" : "scalar");
  };
  std::ostringstream os;
  os << "threads=" << info.hardware_threads
     << " omp_max=" << info.openmp_max_threads
     << " simd=" << isa_name(info.avx512f, info.avx2) << " ("
     << info.simd_width_floats << "-wide f32)"
     << " compiled=" << isa_name(info.compiled_avx512f, info.compiled_avx2)
     << " runtime=" << isa_name(info.runtime_avx512f, info.runtime_avx2);
  return os.str();
}

void require_compiled_isa_supported() {
  const CpuInfo info = cpu_info();
  ensure(!info.compiled_avx512f || info.runtime_avx512f,
         "this binary was compiled with AVX-512F as its baseline ISA "
         "(-march=native on an AVX-512 build host?) but this CPU does not "
         "support it; rebuild with -DSARBP_NATIVE=OFF (the per-ISA kernel "
         "TUs still provide runtime-dispatched AVX2/AVX-512 kernels) or run "
         "on an AVX-512 host");
  ensure(!info.compiled_avx2 || info.runtime_avx2,
         "this binary was compiled with AVX2 as its baseline ISA but this "
         "CPU does not support it; rebuild with -DSARBP_NATIVE=OFF or run "
         "on an AVX2 host");
}

}  // namespace sarbp
