#include "common/cpu.h"

#include <omp.h>

#include <sstream>
#include <thread>

namespace sarbp {

CpuInfo cpu_info() {
  CpuInfo info;
  info.hardware_threads =
      static_cast<int>(std::thread::hardware_concurrency());
  if (info.hardware_threads <= 0) info.hardware_threads = 1;
  info.openmp_max_threads = omp_get_max_threads();
#if defined(__AVX512F__)
  info.avx512f = true;
#endif
#if defined(__AVX2__)
  info.avx2 = true;
#endif
  info.simd_width_floats = info.avx512f ? 16 : (info.avx2 ? 8 : 1);
  return info;
}

std::string cpu_summary() {
  const CpuInfo info = cpu_info();
  std::ostringstream os;
  os << "threads=" << info.hardware_threads
     << " omp_max=" << info.openmp_max_threads << " simd="
     << (info.avx512f ? "avx512" : (info.avx2 ? "avx2" : "scalar")) << " ("
     << info.simd_width_floats << "-wide f32)";
  return os.str();
}

}  // namespace sarbp
