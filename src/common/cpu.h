// Host capability queries used for kernel dispatch decisions and for
// printing the evaluation setup header (paper Table 2 analogue).
#pragma once

#include <string>

namespace sarbp {

struct CpuInfo {
  int hardware_threads = 1;   ///< std::thread::hardware_concurrency
  int openmp_max_threads = 1; ///< omp_get_max_threads at startup
  bool avx2 = false;          ///< compiled-in AVX2 kernel availability
  bool avx512f = false;       ///< compiled-in AVX-512F kernel availability
  int simd_width_floats = 1;  ///< widest usable SIMD lane count for f32
};

/// Capabilities of the binary as compiled (compile-time ISA selection;
/// the library is built with -march=native so compiled == runtime).
CpuInfo cpu_info();

/// Human-readable one-liner for benchmark headers.
std::string cpu_summary();

}  // namespace sarbp
