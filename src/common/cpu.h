// Host capability queries used for kernel dispatch decisions and for
// printing the evaluation setup header (paper Table 2 analogue).
//
// Three layers of ISA capability are reported separately, because since the
// per-ISA kernel TUs landed they are genuinely independent:
//   compiled_*  what the build's baseline -march compiled into *every* TU
//               (a binary whose baseline exceeds the host SIGILLs anywhere);
//   kernel_*    which per-ISA ASR kernel TUs were linked in (built with
//               their own explicit -march, independent of the baseline);
//   runtime_*   what this host's cpuid reports it can execute.
// The legacy avx2/avx512f fields mean "usable by the kernel dispatcher":
// kernel TU present AND the host can run it.
#pragma once

#include <string>

namespace sarbp {

struct CpuInfo {
  int hardware_threads = 1;   ///< std::thread::hardware_concurrency
  int openmp_max_threads = 1; ///< omp_get_max_threads at startup
  // Baseline ISA of the build (-march applied to every translation unit).
  bool compiled_avx2 = false;
  bool compiled_avx512f = false;
  // Per-ISA kernel translation units linked into this binary.
  bool kernel_avx2 = false;
  bool kernel_avx512f = false;
  // What cpuid says the host supports (OS-enabled, via the compiler's
  // cpu-supports runtime on x86; assumed == compiled elsewhere).
  bool runtime_avx2 = false;
  bool runtime_avx512f = false;
  // Usable vector kernels: TU linked in AND host-supported.
  bool avx2 = false;
  bool avx512f = false;
  int simd_width_floats = 1;  ///< widest usable SIMD lane count for f32
};

CpuInfo cpu_info();

/// Human-readable one-liner for benchmark headers.
std::string cpu_summary();

/// Fails fast with a clear PreconditionError when the build's *baseline*
/// ISA exceeds what this host reports — e.g. a -march=native AVX-512 build
/// copied onto an AVX2-only box — instead of letting the first vector
/// instruction SIGILL. Entry points (CLI, benches, the kernel dispatcher)
/// call this before any kernel runs. No-op when the binary is compatible.
void require_compiled_isa_supported();

}  // namespace sarbp
