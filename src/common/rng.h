// Deterministic pseudo-random number generation.
//
// Every stochastic element of the reproduction (reflector placement,
// trajectory perturbation, INS shift injection, test fuzzing) draws from
// this generator so that runs are exactly repeatable from a seed.
#pragma once

#include <cstdint>

namespace sarbp {

/// xoshiro256++ — small, fast, and high quality; splittable via jump().
/// (Blackman & Vigna, 2019.) We avoid std::mt19937 in library code because
/// its state is large and its distributions are not reproducible across
/// standard library implementations.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept;

  /// Uniform 64-bit draw.
  std::uint64_t next() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Standard normal via Box–Muller (deterministic pair caching).
  double normal() noexcept;

  /// Normal with mean/stddev.
  double normal(double mean, double stddev) noexcept;

  /// Uniform integer in [0, n) for n > 0.
  std::uint64_t below(std::uint64_t n) noexcept;

  /// Returns an independent stream: equivalent to 2^128 calls of next().
  /// Used to give each simulated pulse / rank its own substream.
  [[nodiscard]] Rng split() noexcept;

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace sarbp
