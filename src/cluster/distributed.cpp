#include "cluster/distributed.h"

#include <algorithm>
#include <cstring>

#include "cluster/collectives.h"
#include "cluster/comm.h"
#include "common/check.h"
#include "common/timer.h"
#include "obs/metrics.h"

namespace sarbp::cluster {
namespace {

constexpr int kTagTile = 101;
constexpr int kTagRegion = 102;

struct HistoryShape {
  Index num_pulses;
  Index samples;
  double bin_spacing;
  double wavenumber;
};

}  // namespace

Grid2D<CFloat> distributed_backprojection(int ranks,
                                          const sim::PhaseHistory& history,
                                          const geometry::ImageGrid& grid,
                                          const bp::BackprojectOptions& options,
                                          DistributedReport* report) {
  ensure(ranks >= 1, "distributed_backprojection: need at least one rank");
  Grid2D<CFloat> assembled(grid.width(), grid.height());
  DistributedReport local_report;

  run_cluster(ranks, [&](Communicator& comm) {
    // --- Pulse scatter (broadcast): rank 0 ships shape, metadata, samples.
    std::vector<HistoryShape> shape(1);
    std::vector<sim::PulseMeta> meta;
    std::vector<CFloat> samples;
    if (comm.rank() == 0) {
      shape[0] = {history.num_pulses(), history.samples_per_pulse(),
                  history.bin_spacing(), history.wavenumber()};
      meta.resize(static_cast<std::size_t>(history.num_pulses()));
      for (Index p = 0; p < history.num_pulses(); ++p) {
        meta[static_cast<std::size_t>(p)] = history.meta(p);
      }
      samples.assign(history.pulse(0).data(),
                     history.pulse(0).data() +
                         history.num_pulses() * history.samples_per_pulse());
    }
    Timer scatter_timer;
    broadcast(comm, shape, 0);
    // An empty batch forms an all-zero image. Every rank returns here
    // uniformly (no further communication): a zero-pulse cube partitions
    // as one part ({1,1,1}), which cannot match ranks > 1.
    if (shape[0].num_pulses == 0) return;
    broadcast(comm, meta, 0);
    broadcast(comm, samples, 0);
    if (comm.rank() == 0) {
      obs::registry()
          .histogram("cluster.broadcast_s")
          .record(scatter_timer.seconds());
    }

    // Rebuild the local phase history (ranks other than 0 own a copy, as
    // real MPI ranks would).
    sim::PhaseHistory local(shape[0].num_pulses, shape[0].samples,
                            shape[0].bin_spacing, shape[0].wavenumber);
    for (Index p = 0; p < local.num_pulses(); ++p) {
      local.meta(p) = meta[static_cast<std::size_t>(p)];
      std::memcpy(local.pulse(p).data(),
                  samples.data() + p * local.samples_per_pulse(),
                  static_cast<std::size_t>(local.samples_per_pulse()) *
                      sizeof(CFloat));
    }
    local.build_soa();

    // --- MPI-level partition: image dimensions first (§4.2).
    const bp::CubeShape cube{local.num_pulses(), grid.width(), grid.height()};
    const bp::PartitionChoice choice = bp::choose_partition(
        cube, ranks, options.min_region_edge);
    const auto parts = bp::partition_cube(cube, choice);
    ensure(static_cast<int>(parts.size()) == ranks,
           "distributed_backprojection: partition/rank mismatch");
    const bp::CubePart& mine = parts[static_cast<std::size_t>(comm.rank())];

    // --- Local backprojection over the assigned cuboid. Thread CPU time:
    // ranks time-share this host's cores, so wall time would count the
    // other ranks' slices too.
    const bp::Backprojector backprojector(grid, options);
    ThreadCpuTimer timer;
    Grid2D<CFloat> scratch(grid.width(), grid.height());
    backprojector.add_pulses_region(local, mine.region, mine.pulse_begin,
                                    mine.pulse_end, scratch);
    const double compute_s = timer.seconds();
    obs::registry().histogram("cluster.rank_compute_s").record(compute_s);

    // --- Gather: pack the owned region and ship it to rank 0, which
    // accumulates (pulse-split parts overlap in image space and must sum).
    std::vector<CFloat> tile(
        static_cast<std::size_t>(mine.region.pixels()));
    for (Index y = 0; y < mine.region.height; ++y) {
      std::memcpy(tile.data() + y * mine.region.width,
                  scratch.row(mine.region.y0 + y).data() + mine.region.x0,
                  static_cast<std::size_t>(mine.region.width) * sizeof(CFloat));
    }
    const Index region_desc[4] = {mine.region.x0, mine.region.y0,
                                  mine.region.width, mine.region.height};
    if (comm.rank() == 0) {
      obs::ScopedSpan gather_span(
          obs::registry().histogram("cluster.gather_s"));
      // Own tile first.
      for (Index y = 0; y < mine.region.height; ++y) {
        for (Index x = 0; x < mine.region.width; ++x) {
          assembled.at(mine.region.x0 + x, mine.region.y0 + y) +=
              tile[static_cast<std::size_t>(y * mine.region.width + x)];
        }
      }
      double gather_bytes = 0.0;
      for (int r = 1; r < ranks; ++r) {
        const auto desc = comm.recv_vec<Index>(r, kTagRegion);
        const auto data = comm.recv_vec<CFloat>(r, kTagTile);
        gather_bytes += static_cast<double>(data.size()) * sizeof(CFloat);
        const Region region{desc[0], desc[1], desc[2], desc[3]};
        ensure(data.size() == static_cast<std::size_t>(region.pixels()),
               "distributed_backprojection: tile size mismatch");
        for (Index y = 0; y < region.height; ++y) {
          for (Index x = 0; x < region.width; ++x) {
            assembled.at(region.x0 + x, region.y0 + y) +=
                data[static_cast<std::size_t>(y * region.width + x)];
          }
        }
      }
      local_report.gather_bytes = gather_bytes;
      local_report.broadcast_bytes =
          static_cast<double>(samples.size() * sizeof(CFloat) +
                              meta.size() * sizeof(sim::PulseMeta)) *
          static_cast<double>(ranks - 1);
    } else {
      comm.send_vec<Index>(0, kTagRegion, std::span<const Index>(region_desc, 4));
      comm.send_vec<CFloat>(0, kTagTile, std::span<const CFloat>(tile));
    }

    // Critical-path compute time across ranks.
    const double times[1] = {compute_s};
    const auto all_times =
        gather<double>(comm, std::span<const double>(times, 1), 0);
    if (comm.rank() == 0) {
      local_report.max_rank_compute_s =
          *std::max_element(all_times.begin(), all_times.end());
    }
  });

  if (report != nullptr) *report = local_report;
  return assembled;
}

}  // namespace sarbp::cluster
