// Interconnect timing model for the multi-node projection (paper Table 5):
// "We assume that the interconnect has a 3D-torus topology with 2 GB/s
// channels", each node realizes 2 GB/s MPI and 200 MB/s disk bandwidth,
// and data transfers are accounted per output image.
#pragma once

#include <cstddef>

#include "common/types.h"

namespace sarbp::cluster {

struct InterconnectModel {
  double mpi_gbps = 2.0;    ///< per-node realized MPI bandwidth
  double disk_mbps = 200.0; ///< per-node disk I/O bandwidth
  int torus_dims = 3;       ///< 3D torus

  /// Seconds to move `bytes` out of one node over MPI.
  [[nodiscard]] double mpi_seconds(double bytes) const {
    return bytes / (mpi_gbps * 1e9);
  }

  /// Seconds of disk I/O for `bytes` on one node.
  [[nodiscard]] double disk_seconds(double bytes) const {
    return bytes / (disk_mbps * 1e6);
  }

  /// Average hop count between random node pairs on an n-node 3D torus
  /// (k^3 = n): k/4 per dimension, 3 dimensions.
  [[nodiscard]] double average_hops(Index nodes) const;

  /// Bisection bandwidth of the torus in GB/s: 2 * k^2 links * channel.
  [[nodiscard]] double bisection_gbps(Index nodes) const;
};

/// Per-image, per-node communication volumes of the pipeline (paper §4.1):
/// pulse distribution before backprojection (each node receives its
/// 1/nodes share of the new pulse data — this also matches the paper's
/// "9 ms" pulse-distribution quote at 16 nodes), boundary exchanges of
/// width Sc/Ncor/Ncfar, reference/output image-tile traffic, and raw-pulse
/// recording to disk.
struct CommunicationVolumes {
  double pulse_scatter_bytes = 0.0;   ///< new-pulse share per node
  double boundary_bytes = 0.0;        ///< halo strips (reg + CCD + CFAR)
  double image_exchange_bytes = 0.0;  ///< image tile traffic per node
  double disk_bytes = 0.0;            ///< raw pulse recording per node
};

/// Communication volumes for a weak-scaling configuration: image Ix x Iy
/// over `nodes` ranks (square-ish grid), N pulses of S samples (8-byte
/// complex), boundary widths sc/ncor/ncfar (complex pixels and float
/// correlation values).
CommunicationVolumes communication_volumes(Index nodes, Index image,
                                           Index pulses, Index samples,
                                           Index sc, Index ncor, Index ncfar);

}  // namespace sarbp::cluster
