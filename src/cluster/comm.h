// In-process message-passing substrate (DESIGN.md §2 substitution for MPI).
//
// A "cluster" is a set of ranks executed as threads in one process; each
// rank holds a Communicator with MPI-like point-to-point (send/recv with
// source + tag matching), a barrier, and typed convenience wrappers. The
// partitioning, pulse-scatter, and halo-exchange code paths of the paper's
// multi-node pipeline run unchanged on top of this; wire time is modeled
// separately (torus_model.h) exactly as the paper's own Table 5 projection
// does.
#pragma once

#include <barrier>
#include <cstddef>
#include <cstring>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "common/check.h"

namespace sarbp::cluster {

class Cluster;

/// Per-rank endpoint. Valid only inside run_cluster's program callback.
class Communicator {
 public:
  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int size() const { return size_; }

  /// Point-to-point, non-blocking enqueue (buffered send).
  void send(int dest, int tag, std::vector<std::byte> payload);

  /// Blocks until a message from `source` with `tag` arrives.
  std::vector<std::byte> recv(int source, int tag);

  /// Synchronizes every rank of the cluster.
  void barrier();

  /// Typed wrappers for trivially copyable element types.
  template <class T>
  void send_vec(int dest, int tag, std::span<const T> values) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<std::byte> bytes(values.size_bytes());
    if (!bytes.empty()) std::memcpy(bytes.data(), values.data(), bytes.size());
    send(dest, tag, std::move(bytes));
  }

  template <class T>
  std::vector<T> recv_vec(int source, int tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::vector<std::byte> bytes = recv(source, tag);
    ensure(bytes.size() % sizeof(T) == 0, "recv_vec: payload size mismatch");
    std::vector<T> values(bytes.size() / sizeof(T));
    if (!bytes.empty()) std::memcpy(values.data(), bytes.data(), bytes.size());
    return values;
  }

  template <class T>
  void send_value(int dest, int tag, const T& value) {
    send_vec<T>(dest, tag, std::span<const T>(&value, 1));
  }

  template <class T>
  T recv_value(int source, int tag) {
    const auto v = recv_vec<T>(source, tag);
    ensure(v.size() == 1, "recv_value: expected exactly one element");
    return v[0];
  }

 private:
  friend class Cluster;
  friend void run_cluster(int, const std::function<void(Communicator&)>&);
  Communicator(Cluster& cluster, int rank, int size)
      : cluster_(&cluster), rank_(rank), size_(size) {}

  Cluster* cluster_;
  int rank_;
  int size_;
};

/// Runs `program` on `ranks` ranks (one thread each) and joins them.
/// Exceptions thrown by any rank are rethrown (first one wins) after all
/// ranks finished or aborted.
void run_cluster(int ranks, const std::function<void(Communicator&)>& program);

}  // namespace sarbp::cluster
