// In-process message-passing substrate (DESIGN.md §2 substitution for MPI).
//
// A "cluster" is a set of ranks executed as threads in one process; each
// rank holds a Communicator with MPI-like point-to-point (send/recv with
// source + tag matching), a barrier, and typed convenience wrappers. The
// partitioning, pulse-scatter, and halo-exchange code paths of the paper's
// multi-node pipeline run unchanged on top of this; wire time is modeled
// separately (torus_model.h) exactly as the paper's own Table 5 projection
// does.
//
// Failure model: a rank that throws aborts the whole cluster. The abort
// flag wakes every peer blocked in recv() or barrier() with a
// ClusterAborted exception instead of leaving them wedged on a mailbox
// that will never be filled — the MPI_Abort analogue. run_cluster (and
// the ShardCluster service substrate, shard.h) rethrows the root-cause
// exception, not the secondary ClusterAborted unwinds it triggered.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstring>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/thread_annotations.h"

namespace sarbp::cluster {

class Cluster;
class ShardCluster;

/// Thrown out of recv()/barrier() when the cluster was aborted (a peer
/// rank died, or an owner called Cluster::abort). Catching it inside a
/// rank program is almost always wrong: the cluster is already poisoned,
/// and the root cause is what the caller of run_cluster sees.
class ClusterAborted : public std::runtime_error {
 public:
  explicit ClusterAborted(const std::string& why) : std::runtime_error(why) {}
};

/// Shared state of one cluster: a mailbox per endpoint, an abortable
/// barrier over all endpoints, and the abort latch. Exposed (rather than
/// hidden in comm.cpp) so long-lived owners like ShardCluster can build on
/// the same mailboxes; rank programs only ever see Communicator.
class Cluster {
 public:
  explicit Cluster(int endpoints);

  void deliver(int dest, int source, int tag, std::vector<std::byte> payload);

  /// Blocks until a message keyed (source, tag) reaches `dest`'s mailbox.
  /// Messages already delivered are handed out even after an abort (the
  /// drain case); an empty mailbox plus the abort flag throws
  /// ClusterAborted — the fix for the rank-failure hang.
  std::vector<std::byte> take(int dest, int source, int tag);

  /// Barrier over all endpoints. Throws ClusterAborted for every waiter
  /// (and every later arrival) once the cluster is aborted.
  void wait_barrier();

  /// Poisons the cluster: wakes every blocked take()/wait_barrier() with
  /// ClusterAborted. The first caller's `why` becomes the recorded reason;
  /// later calls are no-ops. Safe from any thread.
  void abort(const std::string& why);

  [[nodiscard]] bool aborted() const {
    // order: acquire — pairs with abort()'s release store; an observer of
    // the flag also observes the reason written before it.
    return aborted_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::string abort_reason() const;

 private:
  struct Mailbox {
    // Acquired before reason_mutex_ (take() throws aborted_error() under
    // the box lock). Nested-struct scope cannot name the outer member in
    // SARBP_ACQUIRED_BEFORE; the edge lives in tools/lock_hierarchy.py
    // and the runtime detector instead.
    Mutex mutex{SARBP_LOCK_LEVEL("cluster.mailbox")};
    CondVar cv;
    std::map<std::pair<int, int>, std::deque<std::vector<std::byte>>> messages
        SARBP_GUARDED_BY(mutex);
  };

  [[nodiscard]] ClusterAborted aborted_error() const;

  std::vector<Mailbox> boxes_;

  // Abortable generation-counting barrier (std::barrier cannot be woken
  // early, which is exactly the hang this replaces).
  Mutex barrier_mutex_ SARBP_ACQUIRED_BEFORE(reason_mutex_){
      SARBP_LOCK_LEVEL("cluster.barrier")};
  CondVar barrier_cv_;
  int barrier_arrived_ SARBP_GUARDED_BY(barrier_mutex_) = 0;
  std::uint64_t barrier_gen_ SARBP_GUARDED_BY(barrier_mutex_) = 0;
  const int barrier_width_;

  std::atomic<bool> aborted_{false};
  // Innermost cluster level: wait_barrier()/take() throw aborted_error()
  // (which reads the reason) while still holding their own locks.
  mutable Mutex reason_mutex_ SARBP_ACQUIRED_AFTER(barrier_mutex_){
      SARBP_LOCK_LEVEL("cluster.reason")};
  std::string abort_reason_ SARBP_GUARDED_BY(reason_mutex_);
};

/// Per-rank endpoint. Valid only while its Cluster is alive (inside
/// run_cluster's program callback, or for a ShardCluster's lifetime).
class Communicator {
 public:
  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int size() const { return size_; }

  /// Point-to-point, non-blocking enqueue (buffered send).
  void send(int dest, int tag, std::vector<std::byte> payload);

  /// Blocks until a message from `source` with `tag` arrives. Throws
  /// ClusterAborted once the cluster is aborted and the mailbox is empty.
  std::vector<std::byte> recv(int source, int tag);

  /// Synchronizes every rank of the cluster.
  void barrier();

  /// Typed wrappers for trivially copyable element types.
  template <class T>
  void send_vec(int dest, int tag, std::span<const T> values) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<std::byte> bytes(values.size_bytes());
    if (!bytes.empty()) std::memcpy(bytes.data(), values.data(), bytes.size());
    send(dest, tag, std::move(bytes));
  }

  template <class T>
  std::vector<T> recv_vec(int source, int tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::vector<std::byte> bytes = recv(source, tag);
    ensure(bytes.size() % sizeof(T) == 0, "recv_vec: payload size mismatch");
    std::vector<T> values(bytes.size() / sizeof(T));
    if (!bytes.empty()) std::memcpy(values.data(), bytes.data(), bytes.size());
    return values;
  }

  template <class T>
  void send_value(int dest, int tag, const T& value) {
    send_vec<T>(dest, tag, std::span<const T>(&value, 1));
  }

  template <class T>
  T recv_value(int source, int tag) {
    const auto v = recv_vec<T>(source, tag);
    ensure(v.size() == 1, "recv_value: expected exactly one element");
    return v[0];
  }

 private:
  friend class Cluster;
  friend class ShardCluster;
  friend void run_cluster(int, const std::function<void(Communicator&)>&);
  Communicator(Cluster& cluster, int rank, int size)
      : cluster_(&cluster), rank_(rank), size_(size) {}

  Cluster* cluster_;
  int rank_;
  int size_;
};

/// Runs `program` on `ranks` ranks (one thread each) and joins them. A
/// throwing rank aborts the cluster — peers blocked in recv()/barrier()
/// unwind with ClusterAborted instead of hanging — and the root-cause
/// exception (the first non-ClusterAborted one) is rethrown after join.
void run_cluster(int ranks, const std::function<void(Communicator&)>& program);

}  // namespace sarbp::cluster
