// Long-lived in-process rank pool: the cluster substrate of the sharded
// formation service (DESIGN.md §11).
//
// run_cluster() is one-shot — spawn, run a program, join. A serving front
// end instead needs ranks that outlive any single job: ShardCluster keeps
// `ranks` worker threads alive around a caller-supplied worker-loop
// program and adds one extra mailbox endpoint (id == ranks()) for the
// front end, so a router thread can send job descriptors into rank
// mailboxes and a gather thread can receive result tiles back through the
// same source+tag-matched mailbox layer the distributed path uses.
//
// Failure model: an uncaught exception in any rank records the root cause
// and aborts the underlying Cluster — every peer (and the front end's
// blocked recv) unwinds with ClusterAborted instead of hanging, so a
// throwing shard fails jobs rather than wedging the service. The owner
// observes `aborted()`/`first_error()` and drains.
#pragma once

#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "cluster/comm.h"
#include "common/thread_annotations.h"

namespace sarbp::cluster {

class ShardCluster {
 public:
  /// Worker-loop body, one call per rank thread. `comm.rank()` is the
  /// shard id in [0, ranks()); `comm.size()` is ranks() + 1 and endpoint
  /// ranks() is the front end. The program must return when it receives
  /// its shutdown message; throwing aborts the whole cluster.
  using Program = std::function<void(Communicator&)>;

  ShardCluster(int ranks, Program program);
  ~ShardCluster();

  ShardCluster(const ShardCluster&) = delete;
  ShardCluster& operator=(const ShardCluster&) = delete;

  [[nodiscard]] int ranks() const { return ranks_; }
  /// Mailbox endpoint id of the front end (== ranks()).
  [[nodiscard]] int frontend_id() const { return ranks_; }

  /// The front end's communicator. Mailbox operations are internally
  /// locked, so one thread may send (router) while another receives
  /// (gather); the endpoint itself holds no mutable state.
  [[nodiscard]] Communicator& frontend() { return frontend_; }

  /// Manually poisons the cluster (drain fallback; tests).
  void abort(const std::string& why) { cluster_.abort(why); }
  [[nodiscard]] bool aborted() const { return cluster_.aborted(); }
  [[nodiscard]] std::string abort_reason() const {
    return cluster_.abort_reason();
  }

  /// First uncaught rank error message, empty when none (secondary
  /// ClusterAborted unwinds are not recorded).
  [[nodiscard]] std::string first_error() const;

  /// Joins the rank threads. The caller must already have unblocked every
  /// rank (shutdown messages, or an abort). Idempotent; implied by the
  /// destructor (which aborts first if ranks could still be blocked).
  void join();

 private:
  void record_error(const std::string& message);

  const int ranks_;
  Cluster cluster_;        // ranks_ + 1 endpoints; last one is the front end
  Communicator frontend_;
  std::vector<std::thread> threads_;

  mutable Mutex error_mutex_{SARBP_LOCK_LEVEL("cluster.shard_error")};
  std::string first_error_ SARBP_GUARDED_BY(error_mutex_);
  bool joined_ SARBP_GUARDED_BY(error_mutex_) = false;
};

}  // namespace sarbp::cluster
