// Distributed (multi-rank) backprojection: the paper's MPI-level
// partitioning (Fig. 5) run on the in-process cluster. Rank 0 holds the
// pulse batch, broadcasts it, each rank backprojects its image portion
// (image dimensions split first — §4.2), and the tiles are gathered back.
#pragma once

#include "backprojection/backprojector.h"
#include "common/grid2d.h"
#include "geometry/grid.h"
#include "sim/phase_history.h"

namespace sarbp::cluster {

struct DistributedReport {
  double broadcast_bytes = 0.0;
  double gather_bytes = 0.0;
  double max_rank_compute_s = 0.0;  ///< slowest rank's backprojection time
};

/// Backprojects `history` over `ranks` in-process ranks and returns the
/// assembled full image (identical, up to float reduction order, to a
/// single-rank run). `report` (optional) receives communication volumes
/// and the critical-path compute time.
Grid2D<CFloat> distributed_backprojection(int ranks,
                                          const sim::PhaseHistory& history,
                                          const geometry::ImageGrid& grid,
                                          const bp::BackprojectOptions& options,
                                          DistributedReport* report = nullptr);

}  // namespace sarbp::cluster
