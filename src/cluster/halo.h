// Boundary (halo) exchange over a 2D rank grid (paper §4.1): "each node
// sends neighbors small boundary areas of the assigned image portion" —
// width Sc before registration, Ncorr before CCD, Ncfar before CFAR.
//
// Each rank owns an interior tile of the global image and keeps a
// `halo`-wide margin around it; exchange() fills the margins from the four
// edge neighbours plus the four corners.
#pragma once

#include "cluster/comm.h"
#include "common/grid2d.h"
#include "common/region.h"
#include "common/types.h"

namespace sarbp::cluster {

/// Layout of ranks over the image: ranks_x * ranks_y ranks, row-major.
struct RankGrid {
  Index ranks_x = 1;
  Index ranks_y = 1;

  [[nodiscard]] int rank_of(Index rx, Index ry) const {
    return static_cast<int>(ry * ranks_x + rx);
  }
  [[nodiscard]] Index rx_of(int rank) const { return rank % ranks_x; }
  [[nodiscard]] Index ry_of(int rank) const { return rank / ranks_x; }
};

/// Exchanges `halo`-wide boundary strips of `local` (a tile of
/// (interior + 2*halo)^2 layout: interior at [halo, halo+iw) x
/// [halo, halo+ih)) with the 8 neighbours in the rank grid. Edge-of-image
/// ranks keep zeros in the missing directions.
///
/// `interior_w/h` are this rank's interior extents; they may differ by one
/// pixel between ranks (remainder splitting) as long as neighbouring
/// strips agree, which the even split of partition.h guarantees when every
/// rank uses the same global split.
template <class T>
void exchange_halo(Communicator& comm, const RankGrid& ranks,
                   Grid2D<T>& local, Index interior_w, Index interior_h,
                   Index halo) {
  static_assert(std::is_trivially_copyable_v<T>);
  ensure(local.width() == interior_w + 2 * halo &&
             local.height() == interior_h + 2 * halo,
         "exchange_halo: tile shape must be interior + 2*halo");
  ensure(halo >= 0, "exchange_halo: negative halo");
  if (halo == 0 || comm.size() == 1) return;
  ensure(static_cast<Index>(comm.size()) == ranks.ranks_x * ranks.ranks_y,
         "exchange_halo: rank grid does not match communicator size");
  const Index rx = ranks.rx_of(comm.rank());
  const Index ry = ranks.ry_of(comm.rank());

  // The 8 directions; tag encodes the direction so concurrent exchanges
  // match deterministically.
  struct Dir {
    Index dx, dy;
    int tag;
  };
  const Dir dirs[] = {{-1, 0, 1}, {1, 0, 2}, {0, -1, 3}, {0, 1, 4},
                      {-1, -1, 5}, {1, -1, 6}, {-1, 1, 7}, {1, 1, 8}};

  // Region of *our* data a neighbour in direction d needs: the strip of
  // our interior adjacent to that edge.
  auto strip_for = [&](const Dir& d) -> Region {
    Region r;
    r.x0 = d.dx < 0 ? halo : (d.dx > 0 ? halo + interior_w - halo : halo);
    r.width = d.dx == 0 ? interior_w : halo;
    r.y0 = d.dy < 0 ? halo : (d.dy > 0 ? halo + interior_h - halo : halo);
    r.height = d.dy == 0 ? interior_h : halo;
    return r;
  };
  // Margin region we fill with the neighbour's strip from direction d.
  auto margin_for = [&](const Dir& d) -> Region {
    Region r;
    r.x0 = d.dx < 0 ? 0 : (d.dx > 0 ? halo + interior_w : halo);
    r.width = d.dx == 0 ? interior_w : halo;
    r.y0 = d.dy < 0 ? 0 : (d.dy > 0 ? halo + interior_h : halo);
    r.height = d.dy == 0 ? interior_h : halo;
    return r;
  };

  // Post all sends first (buffered), then receive — deadlock-free.
  for (const Dir& d : dirs) {
    const Index nx = rx + d.dx;
    const Index ny = ry + d.dy;
    if (nx < 0 || nx >= ranks.ranks_x || ny < 0 || ny >= ranks.ranks_y) {
      continue;
    }
    const Region s = strip_for(d);
    std::vector<T> payload(static_cast<std::size_t>(s.pixels()));
    for (Index y = 0; y < s.height; ++y) {
      for (Index x = 0; x < s.width; ++x) {
        payload[static_cast<std::size_t>(y * s.width + x)] =
            local.at(s.x0 + x, s.y0 + y);
      }
    }
    comm.send_vec<T>(ranks.rank_of(nx, ny), d.tag,
                     std::span<const T>(payload));
  }
  for (const Dir& d : dirs) {
    const Index nx = rx + d.dx;
    const Index ny = ry + d.dy;
    if (nx < 0 || nx >= ranks.ranks_x || ny < 0 || ny >= ranks.ranks_y) {
      continue;
    }
    // The neighbour sent with *its* direction tag: the direction pointing
    // back at us is (-dx, -dy); find its tag.
    int back_tag = 0;
    for (const Dir& b : dirs) {
      if (b.dx == -d.dx && b.dy == -d.dy) back_tag = b.tag;
    }
    const auto payload =
        comm.recv_vec<T>(ranks.rank_of(nx, ny), back_tag);
    const Region m = margin_for(d);
    ensure(payload.size() == static_cast<std::size_t>(m.pixels()),
           "exchange_halo: neighbour strip size mismatch");
    for (Index y = 0; y < m.height; ++y) {
      for (Index x = 0; x < m.width; ++x) {
        local.at(m.x0 + x, m.y0 + y) =
            payload[static_cast<std::size_t>(y * m.width + x)];
      }
    }
  }
}

}  // namespace sarbp::cluster
