#include "cluster/torus_model.h"

#include <algorithm>
#include <cmath>

namespace sarbp::cluster {

double InterconnectModel::average_hops(Index nodes) const {
  const double k = std::cbrt(static_cast<double>(nodes));
  return static_cast<double>(torus_dims) * k / 4.0;
}

double InterconnectModel::bisection_gbps(Index nodes) const {
  const double k = std::cbrt(static_cast<double>(nodes));
  return 2.0 * k * k * mpi_gbps;
}

CommunicationVolumes communication_volumes(Index nodes, Index image,
                                           Index pulses, Index samples,
                                           Index sc, Index ncor,
                                           Index ncfar) {
  CommunicationVolumes v;
  // Pulse distribution (§4.1: "distributing the input pulse data among
  // nodes"): each node receives its 1/nodes share of the new pulse batch.
  // (The paper quotes 9 ms at 16 nodes with S = 19K, which this volume /
  // 2 GB/s reproduces.)
  v.pulse_scatter_bytes = static_cast<double>(pulses) *
                          static_cast<double>(samples) * 8.0 /
                          static_cast<double>(nodes);
  // Boundary exchanges: a node's tile edge is image/sqrt(nodes); each of
  // the three exchanges sends 4 strips of (edge x width) items — complex
  // (8 B) for registration/CCD images, float (4 B) for correlation values.
  const double edge =
      static_cast<double>(image) / std::sqrt(static_cast<double>(nodes));
  const double reg = 4.0 * edge * static_cast<double>(sc) * 8.0 * 2.0;  // cur+ref
  const double ccd = 4.0 * edge * static_cast<double>(ncor) * 8.0;
  const double cfar = 4.0 * edge * static_cast<double>(ncfar) * 4.0;
  v.boundary_bytes = reg + ccd + cfar;
  // Reference/output image-tile traffic: each node ships its image slice
  // once per frame (registration reference + output assembly).
  v.image_exchange_bytes = static_cast<double>(image) *
                           static_cast<double>(image) /
                           static_cast<double>(nodes) * 8.0;
  // Disk: recording the node's share of the raw pulse stream (the output
  // products — detections and correlation summaries — are negligible).
  v.disk_bytes = v.pulse_scatter_bytes;
  return v;
}

}  // namespace sarbp::cluster
