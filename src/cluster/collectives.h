// Collective operations over the in-process cluster, built from
// point-to-point messages: broadcast, gather, all-reduce. Root-relayed
// (star) implementations — the cluster is threads in one process, so
// algorithmic topology optimizations would be theater.
#pragma once

#include <numeric>
#include <vector>

#include "cluster/comm.h"

namespace sarbp::cluster {

namespace detail {
inline constexpr int kBroadcastTag = 0x7f00;
inline constexpr int kGatherTag = 0x7f01;
inline constexpr int kReduceTag = 0x7f02;
}  // namespace detail

/// Root's `values` is distributed to every rank; other ranks' vectors are
/// replaced.
template <class T>
void broadcast(Communicator& comm, std::vector<T>& values, int root) {
  if (comm.rank() == root) {
    for (int r = 0; r < comm.size(); ++r) {
      if (r != root) {
        comm.send_vec<T>(r, detail::kBroadcastTag, values);
      }
    }
  } else {
    values = comm.recv_vec<T>(root, detail::kBroadcastTag);
  }
}

/// Concatenates every rank's contribution at the root (rank order);
/// non-root ranks receive an empty vector.
template <class T>
std::vector<T> gather(Communicator& comm, std::span<const T> mine, int root) {
  if (comm.rank() == root) {
    std::vector<T> all;
    for (int r = 0; r < comm.size(); ++r) {
      if (r == root) {
        all.insert(all.end(), mine.begin(), mine.end());
      } else {
        const auto part = comm.recv_vec<T>(r, detail::kGatherTag);
        all.insert(all.end(), part.begin(), part.end());
      }
    }
    return all;
  }
  comm.send_vec<T>(root, detail::kGatherTag, mine);
  return {};
}

/// Element-wise sum across ranks; every rank receives the result.
template <class T>
std::vector<T> allreduce_sum(Communicator& comm, std::span<const T> mine) {
  constexpr int kRoot = 0;
  std::vector<T> result(mine.begin(), mine.end());
  if (comm.rank() == kRoot) {
    for (int r = 1; r < comm.size(); ++r) {
      const auto part = comm.recv_vec<T>(r, detail::kReduceTag);
      ensure(part.size() == result.size(), "allreduce_sum: size mismatch");
      for (std::size_t i = 0; i < result.size(); ++i) result[i] += part[i];
    }
  } else {
    comm.send_vec<T>(kRoot, detail::kReduceTag, std::span<const T>(result));
  }
  broadcast(comm, result, kRoot);
  return result;
}

/// Scalar all-reduce convenience.
inline double allreduce_sum(Communicator& comm, double value) {
  const double v[1] = {value};
  return allreduce_sum<double>(comm, std::span<const double>(v, 1))[0];
}

}  // namespace sarbp::cluster
