#include "cluster/shard.h"

#include <utility>

#include "common/check.h"

namespace sarbp::cluster {

ShardCluster::ShardCluster(int ranks, Program program)
    : ranks_(ranks),
      cluster_(ranks + 1),
      frontend_(cluster_, ranks, ranks + 1) {
  ensure(ranks >= 1, "ShardCluster: need at least one rank");
  ensure(program != nullptr, "ShardCluster: null worker program");
  threads_.reserve(static_cast<std::size_t>(ranks_));
  for (int r = 0; r < ranks_; ++r) {
    threads_.emplace_back([this, r, program] {
      Communicator comm(cluster_, r, ranks_ + 1);
      try {
        program(comm);
      } catch (const ClusterAborted&) {
        // Secondary unwind of a peer's failure; the root cause is already
        // recorded by the rank that threw it.
      } catch (const std::exception& e) {
        record_error(e.what());
        cluster_.abort("shard rank " + std::to_string(r) +
                       " failed: " + e.what());
      } catch (...) {
        record_error("unknown error");
        cluster_.abort("shard rank " + std::to_string(r) + " failed");
      }
    });
  }
}

ShardCluster::~ShardCluster() {
  // If the owner forgot to shut the ranks down, poisoning the cluster is
  // the only way join() can complete.
  if (!cluster_.aborted()) {
    bool joined;
    {
      MutexLock lock(error_mutex_);
      joined = joined_;
    }
    if (!joined) cluster_.abort("ShardCluster destroyed");
  }
  join();
}

std::string ShardCluster::first_error() const {
  MutexLock lock(error_mutex_);
  return first_error_;
}

void ShardCluster::join() {
  {
    MutexLock lock(error_mutex_);
    if (joined_) return;
    joined_ = true;
  }
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
}

void ShardCluster::record_error(const std::string& message) {
  MutexLock lock(error_mutex_);
  if (first_error_.empty()) first_error_ = message;
}

}  // namespace sarbp::cluster
