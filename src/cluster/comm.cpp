#include "cluster/comm.h"

#include <exception>
#include <thread>
#include <utility>

#include "obs/metrics.h"

namespace sarbp::cluster {

Cluster::Cluster(int endpoints)
    : boxes_(static_cast<std::size_t>(endpoints)),
      barrier_width_(endpoints) {
  ensure(endpoints >= 1, "Cluster: need at least one endpoint");
}

void Cluster::deliver(int dest, int source, int tag,
                      std::vector<std::byte> payload) {
  Mailbox& box = boxes_[static_cast<std::size_t>(dest)];
  {
    MutexLock lock(box.mutex);
    box.messages[{source, tag}].push_back(std::move(payload));
  }
  // Mailboxes outlive the cluster threads (owners join before the Cluster
  // dies), so notifying outside the lock is safe here and keeps the
  // receiver from waking straight into a held mutex.
  box.cv.notify_all();
}

std::vector<std::byte> Cluster::take(int dest, int source, int tag) {
  Mailbox& box = boxes_[static_cast<std::size_t>(dest)];
  MutexLock lock(box.mutex);
  const auto key = std::make_pair(source, tag);
  auto it = box.messages.find(key);
  while (it == box.messages.end() || it->second.empty()) {
    // Checked only when the mailbox has nothing for us: messages delivered
    // before the abort still drain normally (the gather path relies on
    // that); only a wait that could never be satisfied turns into a throw.
    if (aborted()) throw aborted_error();
    box.cv.wait(lock);
    it = box.messages.find(key);
  }
  std::vector<std::byte> payload = std::move(it->second.front());
  it->second.pop_front();
  return payload;
}

void Cluster::wait_barrier() {
  MutexLock lock(barrier_mutex_);
  if (aborted()) throw aborted_error();
  const std::uint64_t gen = barrier_gen_;
  if (++barrier_arrived_ == barrier_width_) {
    barrier_arrived_ = 0;
    ++barrier_gen_;
    lock.unlock();
    barrier_cv_.notify_all();
    return;
  }
  while (barrier_gen_ == gen && !aborted()) barrier_cv_.wait(lock);
  if (barrier_gen_ == gen) throw aborted_error();
}

void Cluster::abort(const std::string& why) {
  {
    MutexLock lock(reason_mutex_);
    if (abort_reason_.empty()) abort_reason_ = why;
  }
  // order: release — pairs with the acquire loads in aborted(); a waiter
  // that observes the flag also observes the reason stored above.
  aborted_.store(true, std::memory_order_release);
  // Lock/unlock each waiter's mutex before notifying: a blocked thread is
  // then either before its flag check (and will see it) or already parked
  // in wait (and gets the notify). Notifying without the lock could land
  // between a waiter's check and its wait — the classic lost wakeup.
  for (auto& box : boxes_) {
    { MutexLock lock(box.mutex); }
    box.cv.notify_all();
  }
  { MutexLock lock(barrier_mutex_); }
  barrier_cv_.notify_all();
}

std::string Cluster::abort_reason() const {
  MutexLock lock(reason_mutex_);
  return abort_reason_;
}

ClusterAborted Cluster::aborted_error() const {
  std::string why = abort_reason();
  if (why.empty()) why = "cluster aborted";
  return ClusterAborted(why);
}

void Communicator::send(int dest, int tag, std::vector<std::byte> payload) {
  ensure(dest >= 0 && dest < size_, "Communicator::send: bad destination");
  obs::registry().counter("cluster.messages").add();
  obs::registry()
      .counter("cluster.bytes_sent")
      .add(static_cast<std::uint64_t>(payload.size()));
  cluster_->deliver(dest, rank_, tag, std::move(payload));
}

std::vector<std::byte> Communicator::recv(int source, int tag) {
  ensure(source >= 0 && source < size_, "Communicator::recv: bad source");
  obs::ScopedSpan wait(obs::registry().histogram("cluster.recv_wait_s"));
  return cluster_->take(rank_, source, tag);
}

void Communicator::barrier() { cluster_->wait_barrier(); }

namespace {

bool is_cluster_aborted(const std::exception_ptr& error) {
  try {
    std::rethrow_exception(error);
  } catch (const ClusterAborted&) {
    return true;
  } catch (...) {
    return false;
  }
}

}  // namespace

void run_cluster(int ranks,
                 const std::function<void(Communicator&)>& program) {
  ensure(ranks >= 1, "run_cluster: need at least one rank");
  Cluster cluster(ranks);
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(ranks));
  threads.reserve(static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r) {
    threads.emplace_back([&, r] {
      Communicator comm(cluster, r, ranks);
      try {
        program(comm);
      } catch (...) {
        // Like MPI_Abort: an uncaught rank error poisons the cluster, so
        // peers blocked in recv()/barrier() on this dead rank unwind with
        // ClusterAborted instead of hanging forever.
        errors[static_cast<std::size_t>(r)] = std::current_exception();
        cluster.abort("rank " + std::to_string(r) + " failed");
      }
    });
  }
  for (auto& t : threads) t.join();
  // Rethrow the root cause: a rank's own error beats the secondary
  // ClusterAborted unwinds it triggered in its peers.
  std::exception_ptr first;
  for (const auto& e : errors) {
    if (!e) continue;
    if (!first) first = e;
    if (!is_cluster_aborted(e)) std::rethrow_exception(e);
  }
  if (first) std::rethrow_exception(first);
}

}  // namespace sarbp::cluster
