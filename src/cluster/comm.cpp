#include "cluster/comm.h"

#include <exception>
#include <thread>

#include "common/thread_annotations.h"
#include "obs/metrics.h"

namespace sarbp::cluster {

/// Shared state of one cluster run: a mailbox per rank plus a barrier.
class Cluster {
 public:
  explicit Cluster(int ranks)
      : boxes_(static_cast<std::size_t>(ranks)),
        barrier_(ranks) {}

  void deliver(int dest, int source, int tag, std::vector<std::byte> payload) {
    Mailbox& box = boxes_[static_cast<std::size_t>(dest)];
    {
      MutexLock lock(box.mutex);
      box.messages[{source, tag}].push_back(std::move(payload));
    }
    // Mailboxes outlive the cluster threads (run_cluster joins before the
    // Cluster dies), so notifying outside the lock is safe here and keeps
    // the receiver from waking straight into a held mutex.
    box.cv.notify_all();
  }

  std::vector<std::byte> take(int dest, int source, int tag) {
    Mailbox& box = boxes_[static_cast<std::size_t>(dest)];
    MutexLock lock(box.mutex);
    const auto key = std::make_pair(source, tag);
    auto it = box.messages.find(key);
    while (it == box.messages.end() || it->second.empty()) {
      box.cv.wait(lock);
      it = box.messages.find(key);
    }
    std::vector<std::byte> payload = std::move(it->second.front());
    it->second.pop_front();
    return payload;
  }

  void wait_barrier() { barrier_.arrive_and_wait(); }

 private:
  struct Mailbox {
    Mutex mutex;
    CondVar cv;
    std::map<std::pair<int, int>, std::deque<std::vector<std::byte>>> messages
        SARBP_GUARDED_BY(mutex);
  };
  std::vector<Mailbox> boxes_;
  std::barrier<> barrier_;
};

void Communicator::send(int dest, int tag, std::vector<std::byte> payload) {
  ensure(dest >= 0 && dest < size_, "Communicator::send: bad destination");
  obs::registry().counter("cluster.messages").add();
  obs::registry()
      .counter("cluster.bytes_sent")
      .add(static_cast<std::uint64_t>(payload.size()));
  cluster_->deliver(dest, rank_, tag, std::move(payload));
}

std::vector<std::byte> Communicator::recv(int source, int tag) {
  ensure(source >= 0 && source < size_, "Communicator::recv: bad source");
  obs::ScopedSpan wait(obs::registry().histogram("cluster.recv_wait_s"));
  return cluster_->take(rank_, source, tag);
}

void Communicator::barrier() { cluster_->wait_barrier(); }

void run_cluster(int ranks,
                 const std::function<void(Communicator&)>& program) {
  ensure(ranks >= 1, "run_cluster: need at least one rank");
  Cluster cluster(ranks);
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(ranks));
  threads.reserve(static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r) {
    threads.emplace_back([&, r] {
      Communicator comm(cluster, r, ranks);
      try {
        program(comm);
      } catch (...) {
        // Like MPI, an uncaught rank error is fatal to the whole job; the
        // exception is rethrown to the caller after join. A rank that dies
        // while peers wait on it would deadlock them — programs must not
        // throw between matched communication calls.
        errors[static_cast<std::size_t>(r)] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (const auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

}  // namespace sarbp::cluster
