#include "quality/metrics.h"

#include <algorithm>
#include <cmath>
#include <complex>
#include <numbers>

#include "common/check.h"

namespace sarbp::quality {
namespace {

double magnitude(const Grid2D<CFloat>& image, Index x, Index y) {
  const CFloat v = image.at(x, y);
  return std::hypot(static_cast<double>(v.real()),
                    static_cast<double>(v.imag()));
}

/// Linear-interpolated crossing of `level` between two samples.
double crossing(double inner_pos, double inner_val, double outer_val,
                double level, double direction) {
  if (outer_val >= level || inner_val <= outer_val) {
    return inner_pos + direction;  // no crossing found: one-sample fallback
  }
  const double frac = (inner_val - level) / (inner_val - outer_val);
  return inner_pos + direction * frac;
}

/// -3 dB width of a 1D cut through the peak. `get(offset)` samples the
/// magnitude at integer offsets from the peak.
template <class Getter>
double cut_width(Getter get, Index max_offset) {
  const double peak = get(0);
  const double level = peak / std::numbers::sqrt2;  // -3 dB in magnitude
  double left = -1.0;
  double right = 1.0;
  for (Index off = 1; off <= max_offset; ++off) {
    if (get(off) < level) {
      right = crossing(static_cast<double>(off - 1), get(off - 1), get(off),
                       level, +1.0);
      break;
    }
  }
  for (Index off = 1; off <= max_offset; ++off) {
    if (get(-off) < level) {
      left = crossing(-static_cast<double>(off - 1), get(-(off - 1)),
                      get(-off), level, -1.0);
      break;
    }
  }
  return right - left;
}

/// First local minimum outward from the peak: the mainlobe null.
template <class Getter>
Index null_offset(Getter get, Index max_offset) {
  double prev = get(0);
  for (Index off = 1; off <= max_offset; ++off) {
    const double v = get(off);
    if (v > prev) return off - 1;
    prev = v;
  }
  return max_offset;
}

}  // namespace

PointTargetMetrics measure_point_target(const Grid2D<CFloat>& image, Index x,
                                        Index y, Index search,
                                        Index analysis) {
  ensure(x >= 0 && x < image.width() && y >= 0 && y < image.height(),
         "measure_point_target: location outside image");
  PointTargetMetrics m;

  // Local peak search.
  Index px = x;
  Index py = y;
  double best = 0.0;
  for (Index sy = std::max<Index>(0, y - search);
       sy <= std::min<Index>(image.height() - 1, y + search); ++sy) {
    for (Index sx = std::max<Index>(0, x - search);
         sx <= std::min<Index>(image.width() - 1, x + search); ++sx) {
      const double v = magnitude(image, sx, sy);
      if (v > best) {
        best = v;
        px = sx;
        py = sy;
      }
    }
  }
  m.peak_magnitude = best;

  // Sub-pixel refinement via log-magnitude parabola.
  auto subpixel = [&](double a, double b, double c) {
    const double la = std::log(std::max(a, 1e-300));
    const double lb = std::log(std::max(b, 1e-300));
    const double lc = std::log(std::max(c, 1e-300));
    const double denom = la - 2.0 * lb + lc;
    return std::abs(denom) < 1e-12 ? 0.0
                                   : std::clamp(0.5 * (la - lc) / denom, -0.5, 0.5);
  };
  m.peak_x = static_cast<double>(px);
  m.peak_y = static_cast<double>(py);
  if (px > 0 && px + 1 < image.width()) {
    m.peak_x += subpixel(magnitude(image, px - 1, py), best,
                         magnitude(image, px + 1, py));
  }
  if (py > 0 && py + 1 < image.height()) {
    m.peak_y += subpixel(magnitude(image, px, py - 1), best,
                         magnitude(image, px, py + 1));
  }

  auto cut_x = [&](Index off) {
    const Index sx = std::clamp<Index>(px + off, 0, image.width() - 1);
    return magnitude(image, sx, py);
  };
  auto cut_y = [&](Index off) {
    const Index sy = std::clamp<Index>(py + off, 0, image.height() - 1);
    return magnitude(image, px, sy);
  };
  m.irw_x_px = cut_width(cut_x, analysis);
  m.irw_y_px = cut_width(cut_y, analysis);

  // PSLR/ISLR over the analysis window, excluding the mainlobe (a
  // rectangle out to the first nulls along each axis).
  const Index null_x = null_offset(cut_x, analysis);
  const Index null_y = null_offset(cut_y, analysis);
  double peak_power = best * best;
  double sidelobe_peak = 0.0;
  double sidelobe_energy = 0.0;
  double mainlobe_energy = 0.0;
  for (Index sy = std::max<Index>(0, py - analysis);
       sy <= std::min<Index>(image.height() - 1, py + analysis); ++sy) {
    for (Index sx = std::max<Index>(0, px - analysis);
         sx <= std::min<Index>(image.width() - 1, px + analysis); ++sx) {
      const double v = magnitude(image, sx, sy);
      const bool in_mainlobe =
          std::abs(sx - px) <= null_x && std::abs(sy - py) <= null_y;
      if (in_mainlobe) {
        mainlobe_energy += v * v;
      } else {
        sidelobe_energy += v * v;
        sidelobe_peak = std::max(sidelobe_peak, v);
      }
    }
  }
  m.pslr_db = sidelobe_peak > 0.0
                  ? 20.0 * std::log10(sidelobe_peak / best)
                  : -300.0;
  m.islr_db = (sidelobe_energy > 0.0 && mainlobe_energy > 0.0)
                  ? 10.0 * std::log10(sidelobe_energy / mainlobe_energy)
                  : -300.0;
  (void)peak_power;
  return m;
}

double image_entropy(const Grid2D<CFloat>& image) {
  ensure(image.size() > 0, "image_entropy: empty image");
  double total = 0.0;
  for (const auto& v : image.flat()) {
    total += std::norm(std::complex<double>(v.real(), v.imag()));
  }
  if (total <= 0.0) return 0.0;
  double entropy = 0.0;
  for (const auto& v : image.flat()) {
    const double p = std::norm(std::complex<double>(v.real(), v.imag())) / total;
    if (p > 0.0) entropy -= p * std::log(p);
  }
  return entropy;
}

double peak_to_mean(const Grid2D<CFloat>& image) {
  ensure(image.size() > 0, "peak_to_mean: empty image");
  double peak = 0.0;
  double sum = 0.0;
  for (const auto& v : image.flat()) {
    const double mag = std::hypot(static_cast<double>(v.real()),
                                  static_cast<double>(v.imag()));
    peak = std::max(peak, mag);
    sum += mag;
  }
  const double mean = sum / static_cast<double>(image.size());
  return mean > 0.0 ? peak / mean : 0.0;
}

}  // namespace sarbp::quality
