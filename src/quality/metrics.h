// SAR image-quality metrics: impulse-response width, peak sidelobe ratio,
// integrated sidelobe ratio, and entropy-based focus measures — the
// standard instrumentation for judging image formation quality (Richards,
// "Fundamentals of Radar Signal Processing"). Used by the PFA-vs-
// backprojection comparison and the resolution verification tests.
#pragma once

#include "common/grid2d.h"
#include "common/types.h"

namespace sarbp::quality {

/// Point-target analysis around a known target location.
struct PointTargetMetrics {
  double peak_x = 0.0;       ///< sub-pixel peak position
  double peak_y = 0.0;
  double peak_magnitude = 0.0;
  double irw_x_px = 0.0;     ///< -3 dB impulse response width along x
  double irw_y_px = 0.0;
  double pslr_db = 0.0;      ///< peak sidelobe level relative to the peak
  double islr_db = 0.0;      ///< integrated sidelobe ratio
};

/// Measures a point target near (x, y): finds the local peak within
/// `search` pixels, then evaluates IRW (linear-interpolated -3 dB
/// crossings), PSLR (max outside the mainlobe null-to-null extent within
/// `analysis` pixels), and ISLR over the same analysis window.
PointTargetMetrics measure_point_target(const Grid2D<CFloat>& image, Index x,
                                        Index y, Index search = 4,
                                        Index analysis = 16);

/// Shannon entropy of the normalized intensity image — the classic global
/// focus measure (lower = sharper for point-dominated scenes).
double image_entropy(const Grid2D<CFloat>& image);

/// Ratio of the strongest pixel to the mean magnitude — a quick contrast
/// measure.
double peak_to_mean(const Grid2D<CFloat>& image);

}  // namespace sarbp::quality
